// Package ttree realizes the "stores no keys" extreme of the paper's
// Figure 7 spectrum: the T-Tree of Lehman & Carey, which the paper itself
// equates with "simply a sorted list of record IDs", where no key bytes
// appear in the data structure at all. Every comparison dereferences the
// record ID into the tuple store, so the index memory is pointers only —
// and HOPE can save nothing on it, which is exactly the point Figure 7
// makes (search trees benefit from key compression in proportion to how
// much key material they store).
//
// The implementation follows the paper's equivalence: an ordered array of
// record IDs over an external tuple store, with binary-search lookups.
// Inserts shift (amortized O(n), adequate for the Figure 7 demonstration
// and bulk-load-then-query workloads; the original T-Tree amortizes this
// with a balanced tree of ID arrays).
package ttree

import "bytes"

// TupleStore resolves a record ID to its key, modeling the DBMS heap the
// index points into.
type TupleStore interface {
	KeyOf(recordID uint64) []byte
}

// SliceStore is the simplest TupleStore: record IDs index a key slice.
type SliceStore [][]byte

// KeyOf returns the key bytes of a record.
func (s SliceStore) KeyOf(id uint64) []byte { return s[id] }

// Index is an ordered index storing only record IDs.
type Index struct {
	store TupleStore
	ids   []uint64
}

// New returns an empty index over the tuple store.
func New(store TupleStore) *Index { return &Index{store: store} }

// BulkLoad builds the index from record IDs whose keys are already sorted.
func BulkLoad(store TupleStore, sortedIDs []uint64) *Index {
	return &Index{store: store, ids: append([]uint64(nil), sortedIDs...)}
}

// Len returns the number of indexed records.
func (t *Index) Len() int { return len(t.ids) }

// lowerBound returns the first position whose key >= key.
func (t *Index) lowerBound(key []byte) int {
	lo, hi := 0, len(t.ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.store.KeyOf(t.ids[mid]), key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds a record by ID (its key comes from the store). Duplicate
// keys keep the latest record.
func (t *Index) Insert(id uint64) {
	key := t.store.KeyOf(id)
	i := t.lowerBound(key)
	if i < len(t.ids) && bytes.Equal(t.store.KeyOf(t.ids[i]), key) {
		t.ids[i] = id
		return
	}
	t.ids = append(t.ids, 0)
	copy(t.ids[i+1:], t.ids[i:])
	t.ids[i] = id
}

// Get returns the record ID stored under key.
func (t *Index) Get(key []byte) (uint64, bool) {
	i := t.lowerBound(key)
	if i < len(t.ids) && bytes.Equal(t.store.KeyOf(t.ids[i]), key) {
		return t.ids[i], true
	}
	return 0, false
}

// Scan visits records with key >= start in order until fn returns false.
func (t *Index) Scan(start []byte, fn func(id uint64) bool) {
	for i := t.lowerBound(start); i < len(t.ids); i++ {
		if !fn(t.ids[i]) {
			return
		}
	}
}

// MemoryUsage is the modeled index footprint: 8 bytes per record ID and
// nothing else — no key bytes live in the index.
func (t *Index) MemoryUsage() int { return len(t.ids) * 8 }
