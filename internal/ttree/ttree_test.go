package ttree

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func fixture(rng *rand.Rand, n int) (SliceStore, []uint64) {
	seen := map[string]bool{}
	var store SliceStore
	for len(store) < n {
		k := make([]byte, 1+rng.Intn(10))
		for i := range k {
			k[i] = byte('a' + rng.Intn(8))
		}
		if !seen[string(k)] {
			seen[string(k)] = true
			store = append(store, k)
		}
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		return bytes.Compare(store[ids[a]], store[ids[b]]) < 0
	})
	return store, ids
}

func TestInsertGetScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	store, _ := fixture(rng, 3000)
	idx := New(store)
	order := rng.Perm(len(store))
	for _, i := range order {
		idx.Insert(uint64(i))
	}
	if idx.Len() != len(store) {
		t.Fatalf("Len=%d", idx.Len())
	}
	for i, k := range store {
		id, ok := idx.Get(k)
		if !ok || id != uint64(i) {
			t.Fatalf("Get(%q)=(%d,%v), want %d", k, id, ok, i)
		}
	}
	if _, ok := idx.Get([]byte("zzzzzzzzzzzz")); ok {
		t.Fatal("phantom key")
	}
	// Scans ordered by key.
	var prev []byte
	n := 0
	idx.Scan(nil, func(id uint64) bool {
		k := store.KeyOf(id)
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatal("scan unsorted")
		}
		prev = k
		n++
		return true
	})
	if n != len(store) {
		t.Fatalf("scan saw %d", n)
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	store, sortedIDs := fixture(rng, 2000)
	bl := BulkLoad(store, sortedIDs)
	ins := New(store)
	for i := range store {
		ins.Insert(uint64(i))
	}
	for _, k := range store {
		a, aok := bl.Get(k)
		b, bok := ins.Get(k)
		if a != b || aok != bok {
			t.Fatalf("divergence on %q", k)
		}
	}
}

func TestDuplicateKeyKeepsLatest(t *testing.T) {
	store := SliceStore{[]byte("same"), []byte("same")}
	idx := New(store)
	idx.Insert(0)
	idx.Insert(1)
	if idx.Len() != 1 {
		t.Fatal("duplicate key duplicated")
	}
	if id, _ := idx.Get([]byte("same")); id != 1 {
		t.Fatal("latest record not kept")
	}
}

// The Figure 7 punchline: the T-Tree's index memory is identical whether
// keys are HOPE-compressed or not — it stores no key bytes.
func TestMemoryIndependentOfKeyLength(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	longKeys, ids := fixture(rng, 1000)
	shortStore := make(SliceStore, len(longKeys))
	for i, k := range longKeys {
		shortStore[i] = k[:1+len(k)/2] // "compressed" keys
	}
	long := BulkLoad(longKeys, ids)
	// Short keys may collide after truncation; memory comparison only
	// needs equal record counts, so reuse the same ID set size.
	short := BulkLoad(shortStore, ids)
	if long.MemoryUsage() != short.MemoryUsage() {
		t.Fatalf("T-Tree memory varied with key length: %d vs %d",
			long.MemoryUsage(), short.MemoryUsage())
	}
	if long.MemoryUsage() != 8*len(ids) {
		t.Fatal("index must store exactly 8 bytes per record")
	}
}
