// Package ycsb implements the workload driver of the paper's Section 7:
// YCSB-style workloads C (point lookups) and E (range scans with inserts)
// with the standard scrambled-Zipfian popularity distribution, remapped
// one-to-one onto the string-key datasets so the Zipf skew is preserved
// (paper Section 7.1).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipfian draws items in [0, n) with the YCSB Zipfian distribution
// (theta defaults to 0.99) and scrambles them with an FNV hash so the
// popular items are spread across the key space, exactly as YCSB does.
type Zipfian struct {
	rng            *rand.Rand
	n              uint64
	theta          float64
	alpha, eta     float64
	zetan, zetaTwo float64
	scramble       bool
}

// DefaultTheta is YCSB's default Zipfian constant.
const DefaultTheta = 0.99

// NewZipfian returns a scrambled Zipfian generator over [0, n).
func NewZipfian(n uint64, theta float64, rng *rand.Rand) *Zipfian {
	if n == 0 {
		panic("ycsb: empty key space")
	}
	z := &Zipfian{rng: rng, n: n, theta: theta, scramble: true}
	z.zetan = zeta(n, theta)
	z.zetaTwo = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zetaTwo/z.zetan)
	return z
}

// zeta computes the generalized harmonic number sum(1/i^theta, i=1..n).
func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// nextRank draws the unscrambled Zipf rank (0 is most popular).
func (z *Zipfian) nextRank() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Next draws a scrambled item in [0, n).
func (z *Zipfian) Next() uint64 {
	r := z.nextRank()
	if r >= z.n {
		r = z.n - 1
	}
	if !z.scramble {
		return r
	}
	return fnv64(r) % z.n
}

func fnv64(x uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < 8; i++ {
		h ^= x & 0xFF
		h *= 0x100000001b3
		x >>= 8
	}
	return h
}

// OpKind is a workload operation type.
type OpKind int

const (
	// Read is a point lookup (workload C).
	Read OpKind = iota
	// Scan is a range scan from a start key (workload E).
	Scan
	// Insert adds a new key (workload E).
	Insert
)

// Op is one workload operation. Key indexes the dataset: for Read/Scan it
// selects an existing (loaded) key; for Insert it selects from the insert
// pool beyond the loaded range.
type Op struct {
	Kind    OpKind
	Key     int
	ScanLen int
}

// Workload is a generated operation sequence over a dataset of nKeys
// loaded keys; inserts (workload E) consume keys nKeys..nKeys+inserts-1.
type Workload struct {
	Ops     []Op
	NumKeys int
	Inserts int
}

// MaxScanLen is YCSB's default maximum scan length for workload E.
const MaxScanLen = 100

// GenerateC builds workload C: 100% Zipf-distributed point lookups.
func GenerateC(nOps, nKeys int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	z := NewZipfian(uint64(nKeys), DefaultTheta, rng)
	ops := make([]Op, nOps)
	for i := range ops {
		ops[i] = Op{Kind: Read, Key: int(z.Next())}
	}
	return Workload{Ops: ops, NumKeys: nKeys}
}

// GenerateE builds workload E: 95% range scans (Zipf start key, uniform
// scan length 1..MaxScanLen) and 5% inserts of previously unseen keys.
// The dataset must contain at least nKeys + ceil(nOps*0.05) keys.
func GenerateE(nOps, nKeys int, seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	z := NewZipfian(uint64(nKeys), DefaultTheta, rng)
	ops := make([]Op, nOps)
	inserts := 0
	for i := range ops {
		if rng.Float64() < 0.05 {
			ops[i] = Op{Kind: Insert, Key: nKeys + inserts}
			inserts++
			continue
		}
		ops[i] = Op{Kind: Scan, Key: int(z.Next()), ScanLen: 1 + rng.Intn(MaxScanLen)}
	}
	return Workload{Ops: ops, NumKeys: nKeys, Inserts: inserts}
}

// Mix reports the operation counts, a readability aid for harness output.
func (w Workload) Mix() string {
	var r, s, ins int
	for _, op := range w.Ops {
		switch op.Kind {
		case Read:
			r++
		case Scan:
			s++
		case Insert:
			ins++
		}
	}
	return fmt.Sprintf("reads=%d scans=%d inserts=%d", r, s, ins)
}
