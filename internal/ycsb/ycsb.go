// Package ycsb implements a YCSB-style workload driver: the six core
// workloads A-F with the standard scrambled-Zipfian, skewed-latest and
// uniform popularity distributions, remapped one-to-one onto the string-key
// datasets so the skew is preserved (paper Section 7.1 uses workloads C
// and E; the concurrent serving benchmarks sweep all six).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipfian draws items in [0, n) with the YCSB Zipfian distribution
// (theta defaults to 0.99) and scrambles them with an FNV hash so the
// popular items are spread across the key space, exactly as YCSB does.
type Zipfian struct {
	rng            *rand.Rand
	n              uint64
	theta          float64
	alpha, eta     float64
	zetan, zetaTwo float64
	scramble       bool
}

// DefaultTheta is YCSB's default Zipfian constant.
const DefaultTheta = 0.99

// NewZipfian returns a scrambled Zipfian generator over [0, n).
func NewZipfian(n uint64, theta float64, rng *rand.Rand) *Zipfian {
	if n == 0 {
		panic("ycsb: empty key space")
	}
	z := &Zipfian{rng: rng, n: n, theta: theta, scramble: true}
	z.zetan = zeta(n, theta)
	z.zetaTwo = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zetaTwo/z.zetan)
	return z
}

// zeta computes the generalized harmonic number sum(1/i^theta, i=1..n).
func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// nextRank draws the unscrambled Zipf rank (0 is most popular).
func (z *Zipfian) nextRank() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Next draws a scrambled item in [0, n).
func (z *Zipfian) Next() uint64 {
	r := z.nextRank()
	if r >= z.n {
		r = z.n - 1
	}
	if !z.scramble {
		return r
	}
	return fnv64(r) % z.n
}

func fnv64(x uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < 8; i++ {
		h ^= x & 0xFF
		h *= 0x100000001b3
		x >>= 8
	}
	return h
}

// Latest draws recency-skewed items: the most recently inserted key is the
// most popular, with Zipf-decaying popularity into the past — YCSB's
// SkewedLatest distribution (workload D's read side). The Zipf basis is
// unscrambled (scrambling would destroy the recency correlation) and spans
// a fixed window; YCSB proper re-derives zeta as the item count grows,
// which converges to the same shape for windows this size.
type Latest struct {
	z *Zipfian
}

// NewLatest returns a skewed-latest generator whose recency decay is
// Zipfian over a window of the given size.
func NewLatest(window uint64, rng *rand.Rand) *Latest {
	z := NewZipfian(window, DefaultTheta, rng)
	z.scramble = false
	return &Latest{z: z}
}

// Next draws an item in [0, max]: max (the latest insert) with the highest
// probability, decaying Zipf-fashion toward 0.
func (l *Latest) Next(max uint64) uint64 {
	d := l.z.Next()
	if d > max {
		d %= max + 1
	}
	return max - d
}

// OpKind is a workload operation type.
type OpKind int

const (
	// Read is a point lookup.
	Read OpKind = iota
	// Update overwrites the value under an existing key.
	Update
	// Insert adds a previously unseen key.
	Insert
	// Scan is a range scan from a start key.
	Scan
	// ReadModifyWrite reads a key then writes it back (workload F).
	ReadModifyWrite
)

// Op is one workload operation. Key indexes the dataset: for
// Read/Update/Scan/ReadModifyWrite it selects an existing (loaded or
// already-inserted) key; for Insert it selects the next key from the
// insert pool beyond the loaded range.
type Op struct {
	Kind    OpKind
	Key     int
	ScanLen int
}

// Kind names one of the six core YCSB workloads.
type Kind int

const (
	// A is the update-heavy mix: 50% reads, 50% updates, Zipfian.
	A Kind = iota
	// B is the read-mostly mix: 95% reads, 5% updates, Zipfian.
	B
	// C is read-only: 100% Zipfian point lookups.
	C
	// D is read-latest: 95% reads skewed to recent inserts, 5% inserts.
	D
	// E is scan-heavy: 95% range scans (Zipfian start, uniform length
	// 1..MaxScanLen), 5% inserts.
	E
	// F is read-modify-write: 50% reads, 50% RMW, Zipfian.
	F
)

// Kinds lists the six workloads in YCSB order.
var Kinds = []Kind{A, B, C, D, E, F}

func (k Kind) String() string {
	if k < A || k > F {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return string(rune('A' + int(k)))
}

// ParseKind resolves a workload name ("A".."F", case-sensitive).
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("ycsb: unknown workload %q (want A..F)", s)
}

// Workload is a generated operation sequence over a dataset of nKeys
// loaded keys; inserts consume keys nKeys..nKeys+Inserts-1, in order.
type Workload struct {
	Kind    Kind
	Ops     []Op
	NumKeys int
	Inserts int
}

// MaxScanLen is YCSB's default maximum scan length for workload E.
const MaxScanLen = 100

// mix is a workload's operation composition as cumulative probabilities.
type mix struct {
	read, update, insert, scan, rmw float64
	latestReads                     bool
}

var mixes = map[Kind]mix{
	A: {read: 0.5, update: 0.5},
	B: {read: 0.95, update: 0.05},
	C: {read: 1.0},
	D: {read: 0.95, insert: 0.05, latestReads: true},
	E: {scan: 0.95, insert: 0.05},
	F: {read: 0.5, rmw: 0.5},
}

// Generate builds the named workload: nOps operations over nKeys loaded
// keys, deterministic in the seed. Workloads D and E insert fresh keys;
// the dataset must contain at least nKeys + ceil(nOps*0.05)+1 keys.
func Generate(kind Kind, nOps, nKeys int, seed int64) Workload {
	m := mixes[kind]
	rng := rand.New(rand.NewSource(seed))
	z := NewZipfian(uint64(nKeys), DefaultTheta, rng)
	var latest *Latest
	if m.latestReads {
		latest = NewLatest(uint64(nKeys), rng)
	}
	ops := make([]Op, nOps)
	inserts := 0
	// A single-op mix needs no type draw; skipping it also keeps workload
	// C's op stream byte-identical to earlier revisions at a given seed
	// (recorded figures depend on the stream).
	pureRead := m.read == 1 && !m.latestReads
	for i := range ops {
		var u float64
		if !pureRead {
			u = rng.Float64()
		} else {
			u = 1 // falls through to the read branch
		}
		switch {
		case u < m.insert:
			ops[i] = Op{Kind: Insert, Key: nKeys + inserts}
			inserts++
		case u < m.insert+m.scan:
			ops[i] = Op{Kind: Scan, Key: int(z.Next()), ScanLen: 1 + rng.Intn(MaxScanLen)}
		case u < m.insert+m.scan+m.update:
			ops[i] = Op{Kind: Update, Key: int(z.Next())}
		case u < m.insert+m.scan+m.update+m.rmw:
			ops[i] = Op{Kind: ReadModifyWrite, Key: int(z.Next())}
		default: // read
			if latest != nil {
				// Read over everything inserted so far, skewed to the
				// most recent insert.
				ops[i] = Op{Kind: Read, Key: int(latest.Next(uint64(nKeys + inserts - 1)))}
			} else {
				ops[i] = Op{Kind: Read, Key: int(z.Next())}
			}
		}
	}
	return Workload{Kind: kind, Ops: ops, NumKeys: nKeys, Inserts: inserts}
}

// GenerateC builds workload C: 100% Zipf-distributed point lookups.
func GenerateC(nOps, nKeys int, seed int64) Workload {
	return Generate(C, nOps, nKeys, seed)
}

// GenerateE builds workload E: 95% range scans (Zipf start key, uniform
// scan length 1..MaxScanLen) and 5% inserts of previously unseen keys.
// The dataset must contain at least nKeys + ceil(nOps*0.05) keys.
func GenerateE(nOps, nKeys int, seed int64) Workload {
	return Generate(E, nOps, nKeys, seed)
}

// StrideInserts remaps every fresh-key reference (dataset index >=
// NumKeys) to the arithmetic sequence base + ord*stride + offset, giving
// concurrent workload streams disjoint insert pools: stream t of n uses
// offset=t, stride=n and a shared base, so no two streams ever insert the
// same dataset key. The generator numbers its m-th insert NumKeys+m, so
// the remap is positional — and it is applied to *all* op kinds, not just
// Insert: workload D's latest-skewed reads reference fresh keys by the
// same numbering, and remapping them identically keeps each read aimed at
// the very key its stream's m-th insert produced, preserving the recency
// correlation per stream (YCSB's per-thread read-latest behaviour).
func (w *Workload) StrideInserts(base, offset, stride int) {
	for i := range w.Ops {
		if m := w.Ops[i].Key - w.NumKeys; m >= 0 {
			w.Ops[i].Key = base + m*stride + offset
		}
	}
}

// MaxKey returns the largest dataset index the workload references — the
// minimum dataset size is MaxKey()+1.
func (w *Workload) MaxKey() int {
	max := w.NumKeys - 1
	for _, op := range w.Ops {
		if op.Key > max {
			max = op.Key
		}
	}
	return max
}

// Mix reports the operation counts, a readability aid for harness output.
func (w Workload) Mix() string {
	var r, u, s, ins, rmw int
	for _, op := range w.Ops {
		switch op.Kind {
		case Read:
			r++
		case Update:
			u++
		case Scan:
			s++
		case Insert:
			ins++
		case ReadModifyWrite:
			rmw++
		}
	}
	return fmt.Sprintf("reads=%d updates=%d scans=%d inserts=%d rmw=%d", r, u, s, ins, rmw)
}
