package ycsb

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestZipfianRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipfian(1000, DefaultTheta, rng)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}

// The unscrambled rank distribution must be Zipf-shaped: rank 0 drawn with
// probability ~ 1/zetan.
func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 10000
	z := NewZipfian(n, DefaultTheta, rng)
	z.scramble = false
	const draws = 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	p0 := float64(counts[0]) / draws
	want := 1 / z.zetan
	if math.Abs(p0-want) > 0.02 {
		t.Fatalf("P(rank 0) = %.4f, want ~%.4f", p0, want)
	}
	// Monotone-ish decay over decades.
	if counts[0] < counts[10] || counts[10] < counts[1000] {
		t.Fatalf("not Zipf-shaped: c0=%d c10=%d c1000=%d", counts[0], counts[10], counts[1000])
	}
}

// Scrambling spreads the popular ranks but preserves total skew: the top
// 1% of items should take a large share of draws.
func TestScrambledZipfianSkewPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 10000
	z := NewZipfian(n, DefaultTheta, rng)
	const draws = 300000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top1 := 0
	for i := 0; i < n/100; i++ {
		top1 += counts[i]
	}
	share := float64(top1) / draws
	if share < 0.25 {
		t.Fatalf("top-1%% share %.3f too small; skew lost in scrambling", share)
	}
	// And scrambled hot items are not clustered at low indexes: the most
	// popular raw index should rarely be 0.
	unscrambledHot := fnv64(0) % n
	if unscrambledHot == 0 {
		t.Skip("hash coincidence")
	}
}

func TestGenerateCDeterministicAndPure(t *testing.T) {
	a := GenerateC(5000, 1000, 7)
	b := GenerateC(5000, 1000, 7)
	if len(a.Ops) != 5000 {
		t.Fatal("op count")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatal("non-deterministic")
		}
		if a.Ops[i].Kind != Read {
			t.Fatal("workload C must be pure reads")
		}
		if a.Ops[i].Key < 0 || a.Ops[i].Key >= 1000 {
			t.Fatal("key out of range")
		}
	}
	if !strings.Contains(a.Mix(), "reads=5000") {
		t.Fatalf("mix: %s", a.Mix())
	}
}

func TestGenerateEMixAndInsertKeys(t *testing.T) {
	w := GenerateE(20000, 1000, 11)
	scans, inserts := 0, 0
	nextInsert := 1000
	for _, op := range w.Ops {
		switch op.Kind {
		case Scan:
			scans++
			if op.ScanLen < 1 || op.ScanLen > MaxScanLen {
				t.Fatalf("scan len %d", op.ScanLen)
			}
			if op.Key < 0 || op.Key >= 1000 {
				t.Fatal("scan key out of range")
			}
		case Insert:
			inserts++
			if op.Key != nextInsert {
				t.Fatalf("insert keys must be sequential fresh keys: got %d want %d",
					op.Key, nextInsert)
			}
			nextInsert++
		default:
			t.Fatal("unexpected read in workload E")
		}
	}
	frac := float64(inserts) / float64(len(w.Ops))
	if frac < 0.03 || frac > 0.07 {
		t.Fatalf("insert fraction %.3f outside ~5%%", frac)
	}
	if w.Inserts != inserts {
		t.Fatal("insert count mismatch")
	}
}

func TestZipfianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipfian(0, DefaultTheta, rand.New(rand.NewSource(1)))
}
