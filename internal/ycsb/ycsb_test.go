package ycsb

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestZipfianRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipfian(1000, DefaultTheta, rng)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}

// The unscrambled rank distribution must be Zipf-shaped: rank 0 drawn with
// probability ~ 1/zetan.
func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 10000
	z := NewZipfian(n, DefaultTheta, rng)
	z.scramble = false
	const draws = 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	p0 := float64(counts[0]) / draws
	want := 1 / z.zetan
	if math.Abs(p0-want) > 0.02 {
		t.Fatalf("P(rank 0) = %.4f, want ~%.4f", p0, want)
	}
	// Monotone-ish decay over decades.
	if counts[0] < counts[10] || counts[10] < counts[1000] {
		t.Fatalf("not Zipf-shaped: c0=%d c10=%d c1000=%d", counts[0], counts[10], counts[1000])
	}
}

// Scrambling spreads the popular ranks but preserves total skew: the top
// 1% of items should take a large share of draws.
func TestScrambledZipfianSkewPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 10000
	z := NewZipfian(n, DefaultTheta, rng)
	const draws = 300000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top1 := 0
	for i := 0; i < n/100; i++ {
		top1 += counts[i]
	}
	share := float64(top1) / draws
	if share < 0.25 {
		t.Fatalf("top-1%% share %.3f too small; skew lost in scrambling", share)
	}
	// And scrambled hot items are not clustered at low indexes: the most
	// popular raw index should rarely be 0.
	unscrambledHot := fnv64(0) % n
	if unscrambledHot == 0 {
		t.Skip("hash coincidence")
	}
}

func TestGenerateCDeterministicAndPure(t *testing.T) {
	a := GenerateC(5000, 1000, 7)
	b := GenerateC(5000, 1000, 7)
	if len(a.Ops) != 5000 {
		t.Fatal("op count")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatal("non-deterministic")
		}
		if a.Ops[i].Kind != Read {
			t.Fatal("workload C must be pure reads")
		}
		if a.Ops[i].Key < 0 || a.Ops[i].Key >= 1000 {
			t.Fatal("key out of range")
		}
	}
	if !strings.Contains(a.Mix(), "reads=5000") {
		t.Fatalf("mix: %s", a.Mix())
	}
}

func TestGenerateEMixAndInsertKeys(t *testing.T) {
	w := GenerateE(20000, 1000, 11)
	scans, inserts := 0, 0
	nextInsert := 1000
	for _, op := range w.Ops {
		switch op.Kind {
		case Scan:
			scans++
			if op.ScanLen < 1 || op.ScanLen > MaxScanLen {
				t.Fatalf("scan len %d", op.ScanLen)
			}
			if op.Key < 0 || op.Key >= 1000 {
				t.Fatal("scan key out of range")
			}
		case Insert:
			inserts++
			if op.Key != nextInsert {
				t.Fatalf("insert keys must be sequential fresh keys: got %d want %d",
					op.Key, nextInsert)
			}
			nextInsert++
		default:
			t.Fatal("unexpected read in workload E")
		}
	}
	frac := float64(inserts) / float64(len(w.Ops))
	if frac < 0.03 || frac > 0.07 {
		t.Fatalf("insert fraction %.3f outside ~5%%", frac)
	}
	if w.Inserts != inserts {
		t.Fatal("insert count mismatch")
	}
}

// TestGenerateDeterministic: every workload is byte-identical under a
// fixed seed — the property the concurrent harness and the perf gate rely
// on for comparable runs.
func TestGenerateDeterministic(t *testing.T) {
	for _, kind := range Kinds {
		a := Generate(kind, 8000, 1000, 21)
		b := Generate(kind, 8000, 1000, 21)
		if a.Kind != kind || len(a.Ops) != 8000 {
			t.Fatalf("%v: malformed workload", kind)
		}
		for i := range a.Ops {
			if a.Ops[i] != b.Ops[i] {
				t.Fatalf("%v: op %d differs between same-seed runs", kind, i)
			}
		}
		if a.Inserts != b.Inserts {
			t.Fatalf("%v: insert counts differ", kind)
		}
	}
}

// TestWorkloadMixes pins each workload's operation composition to the
// YCSB definition (within sampling tolerance) and its key-range contract.
func TestWorkloadMixes(t *testing.T) {
	const nOps, nKeys = 40000, 1000
	wants := map[Kind]map[OpKind]float64{
		A: {Read: 0.5, Update: 0.5},
		B: {Read: 0.95, Update: 0.05},
		C: {Read: 1.0},
		D: {Read: 0.95, Insert: 0.05},
		E: {Scan: 0.95, Insert: 0.05},
		F: {Read: 0.5, ReadModifyWrite: 0.5},
	}
	for _, kind := range Kinds {
		w := Generate(kind, nOps, nKeys, 31)
		counts := map[OpKind]int{}
		nextInsert := nKeys
		maxKey := w.MaxKey()
		for _, op := range w.Ops {
			counts[op.Kind]++
			switch op.Kind {
			case Insert:
				if op.Key != nextInsert {
					t.Fatalf("%v: insert keys must be sequential fresh keys: got %d want %d",
						kind, op.Key, nextInsert)
				}
				nextInsert++
			case Scan:
				if op.ScanLen < 1 || op.ScanLen > MaxScanLen {
					t.Fatalf("%v: scan len %d", kind, op.ScanLen)
				}
				fallthrough
			default:
				if op.Key < 0 || op.Key > maxKey {
					t.Fatalf("%v: key %d out of range", kind, op.Key)
				}
				if kind != D && op.Kind == Read && op.Key >= nKeys {
					t.Fatalf("%v: read of uninserted key %d", kind, op.Key)
				}
			}
		}
		want := wants[kind]
		for opk, frac := range want {
			got := float64(counts[opk]) / float64(nOps)
			if got < frac-0.02 || got > frac+0.02 {
				t.Fatalf("%v: op %v fraction %.3f, want ~%.2f (mix: %s)",
					kind, opk, got, frac, w.Mix())
			}
		}
		for opk, n := range counts {
			if _, ok := want[opk]; !ok && n > 0 {
				t.Fatalf("%v: unexpected op kind %v (%d ops)", kind, opk, n)
			}
		}
		if w.Inserts != counts[Insert] {
			t.Fatalf("%v: Inserts=%d but %d insert ops", kind, w.Inserts, counts[Insert])
		}
	}
}

// TestLatestRecency: the skewed-latest distribution must concentrate its
// mass near max (the most recent insert) — the defining recency property —
// and never draw outside [0, max].
func TestLatestRecency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const window = 10000
	l := NewLatest(window, rng)
	const max = 7500
	const draws = 200000
	recent, older := 0, 0 // last 1% of the range vs the rest
	cut := uint64(max) - max/100
	for i := 0; i < draws; i++ {
		v := l.Next(max)
		if v > max {
			t.Fatalf("draw %d beyond latest %d", v, max)
		}
		if v >= cut {
			recent++
		} else {
			older++
		}
	}
	share := float64(recent) / draws
	// A uniform draw would put 1% here; Zipf recency concentrates far
	// more. Use a conservative floor so the test is not brittle.
	if share < 0.25 {
		t.Fatalf("last-1%% share %.3f too small; latest distribution lost its recency skew", share)
	}
	// The single most likely value must be max itself.
	if l.Next(0) != 0 {
		t.Fatal("Next(0) must return 0")
	}
}

// TestLatestTracksInsertsInD: in workload D the read population follows
// the insert frontier — reads drawn late in the op stream must reference
// keys inserted during the run (indexes >= nKeys) far more often than an
// insert-blind distribution would.
func TestLatestTracksInsertsInD(t *testing.T) {
	const nOps, nKeys = 50000, 2000
	w := Generate(D, nOps, nKeys, 17)
	if w.Inserts == 0 {
		t.Fatal("workload D generated no inserts")
	}
	lateReads, lateFresh := 0, 0
	for _, op := range w.Ops[nOps/2:] {
		if op.Kind != Read {
			continue
		}
		lateReads++
		if op.Key >= nKeys {
			lateFresh++
		}
	}
	frac := float64(lateFresh) / float64(lateReads)
	// In the second half ~625 of 2625 reachable keys are fresh (~24% of
	// the space); recency skew should push the read share well above a
	// tenth even though fresh keys are the *newest* fraction.
	if frac < 0.10 {
		t.Fatalf("late reads hit fresh keys %.3f of the time; recency not tracking inserts", frac)
	}
	// And D must stay deterministic like the rest (regression guard for
	// the stateful latest generator).
	w2 := Generate(D, nOps, nKeys, 17)
	for i := range w.Ops {
		if w.Ops[i] != w2.Ops[i] {
			t.Fatal("workload D non-deterministic")
		}
	}
}

// TestStrideInserts: concurrent streams get disjoint insert pools, and
// fresh-key reads (workload D) stay aimed at keys the same stream already
// inserted — the recency correlation must survive the remap.
func TestStrideInserts(t *testing.T) {
	const streams = 4
	seen := map[int]int{}
	for tid := 0; tid < streams; tid++ {
		for _, kind := range []Kind{D, E} {
			w := Generate(kind, 10000, 500, int64(100+tid))
			w.StrideInserts(500, tid, streams)
			inserted := map[int]bool{}
			for _, op := range w.Ops {
				switch {
				case op.Kind == Insert:
					if (op.Key-500-tid)%streams != 0 {
						t.Fatalf("%v stream %d inserted key %d outside its stride", kind, tid, op.Key)
					}
					if prev, dup := seen[op.Key]; dup && prev != tid {
						t.Fatalf("key %d inserted by streams %d and %d", op.Key, prev, tid)
					}
					seen[op.Key] = tid
					inserted[op.Key] = true
				case op.Key >= 500: // fresh-key read (workload D)
					if kind != D {
						t.Fatalf("%v: non-insert op on fresh key %d", kind, op.Key)
					}
					if !inserted[op.Key] {
						t.Fatalf("D stream %d reads fresh key %d before its own insert — recency correlation broken",
							tid, op.Key)
					}
				}
			}
		}
	}
}

func TestZipfianPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipfian(0, DefaultTheta, rand.New(rand.NewSource(1)))
}
