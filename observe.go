package hope

import (
	"repro/internal/lifecycle"
	"repro/internal/telemetry"
)

// Instrumented is implemented by stores that maintain always-on metrics:
// RegisterMetrics exposes them through the given registry. The server
// layer asserts to this interface so any instrumented store shows up in
// its stats verb and /metrics exposition with no wiring.
type Instrumented interface {
	RegisterMetrics(reg *telemetry.Registry) error
}

// Traced is implemented by stores that keep a structured lifecycle event
// trace (AdaptiveIndex rebuilds: triggers, per-shard copies, flips,
// cutovers, aborts).
type Traced interface {
	Trace() *telemetry.EventTrace
}

// Point-op latencies are sampled 1-in-pointSampleEvery so the always-on
// recorder costs one striped atomic add on the unsampled invocations —
// Get stays zero-alloc and within the benchdiff gates. Scans run
// microseconds and are orders of magnitude rarer, so every one is
// recorded.
const (
	pointSampleEvery = 64
	scanSampleEvery  = 1
)

// opMetrics is the per-op instrument bundle an index layer maintains from
// construction (always-on; a registry only makes it visible).
type opMetrics struct {
	get, put, del, scan *telemetry.OpStats
}

func newOpMetrics() opMetrics {
	return opMetrics{
		get:  telemetry.NewOpStats(pointSampleEvery),
		put:  telemetry.NewOpStats(pointSampleEvery),
		del:  telemetry.NewOpStats(pointSampleEvery),
		scan: telemetry.NewOpStats(scanSampleEvery),
	}
}

func (m *opMetrics) register(reg *telemetry.Registry) error {
	for _, e := range []struct {
		name string
		op   *telemetry.OpStats
	}{
		{"hope_index_get", m.get},
		{"hope_index_put", m.put},
		{"hope_index_delete", m.del},
		{"hope_index_scan", m.scan},
	} {
		if err := reg.Register(e.name, e.op); err != nil {
			return err
		}
	}
	return nil
}

func registerGauges(reg *telemetry.Registry, gauges []namedGauge) error {
	for _, g := range gauges {
		if err := reg.GaugeFunc(g.name, g.fn); err != nil {
			return err
		}
	}
	return nil
}

type namedGauge struct {
	name string
	fn   func() float64
}

// RegisterMetrics exposes the sharded index's op counters, latency
// histograms, and size/skew gauges through reg.
func (s *ShardedIndex) RegisterMetrics(reg *telemetry.Registry) error {
	if err := s.met.register(reg); err != nil {
		return err
	}
	return registerGauges(reg, []namedGauge{
		{"hope_index_len", func() float64 { return float64(s.Len()) }},
		{"hope_index_memory_bytes", func() float64 { return float64(s.MemoryUsage()) }},
		{"hope_index_shards", func() float64 { return float64(s.NumShards()) }},
		{"hope_index_max_shard_frac", s.MaxShardFrac},
	})
}

// RegisterMetrics exposes the adaptive index's op instruments plus the
// full lifecycle health surface: state, generation, rolling vs build CPR
// (the drift baseline), rebuild/abort counters, breaker and backoff
// state, migration progress, and partition skew.
func (a *AdaptiveIndex) RegisterMetrics(reg *telemetry.Registry) error {
	if err := a.met.register(reg); err != nil {
		return err
	}
	return registerGauges(reg, []namedGauge{
		{"hope_index_len", func() float64 { return float64(a.Len()) }},
		{"hope_index_memory_bytes", func() float64 { return float64(a.MemoryUsage()) }},
		{"hope_index_shards", func() float64 { return float64(a.NumShards()) }},
		{"hope_index_max_shard_frac", a.MaxShardFrac},
		{"hope_lifecycle_state", func() float64 { return float64(a.ctl.State()) }},
		{"hope_lifecycle_generation", func() float64 { return float64(a.ctl.Generation()) }},
		{"hope_lifecycle_seen", func() float64 { return float64(a.ctl.Stats().Seen) }},
		{"hope_lifecycle_reservoir", func() float64 { return float64(a.ctl.Stats().Reservoir) }},
		{"hope_lifecycle_build_cpr", func() float64 { return a.ctl.Stats().BuildCPR }},
		{"hope_lifecycle_recent_cpr", func() float64 { return a.ctl.Stats().RecentCPR }},
		{"hope_lifecycle_rebuilds_total", func() float64 { return float64(a.ctl.Stats().Rebuilds) }},
		{"hope_lifecycle_aborts_total", func() float64 { return float64(a.ctl.Stats().Aborts) }},
		{"hope_lifecycle_degraded", func() float64 { return boolGauge(a.ctl.Degraded()) }},
		{"hope_lifecycle_consecutive_failures", func() float64 { return float64(a.ctl.Stats().ConsecutiveFailures) }},
		{"hope_lifecycle_migrated_shards", func() float64 { return float64(a.migrated.Load()) }},
	})
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Trace returns the index's lifecycle event trace: a bounded ring of
// typed rebuild events (trigger, build, per-shard copy and flip, cutover,
// abort, backoff) that replaces log-free debugging of migrations.
func (a *AdaptiveIndex) Trace() *telemetry.EventTrace { return a.trace }

// driftReason names a lifecycle signal for the event trace.
func driftReason(sig lifecycle.Signal) string {
	switch sig {
	case lifecycle.FirstBuild:
		return "first-build"
	case lifecycle.Drift:
		return "drift"
	}
	return "signal"
}
