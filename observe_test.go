package hope

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/lifecycle"
	"repro/internal/telemetry"
)

// TestShardedRegisterMetrics wires a ShardedIndex into a registry, drives
// traffic, and checks the exported surface: op totals count every call,
// sampled latency series exist, and the size gauges report live state.
func TestShardedRegisterMetrics(t *testing.T) {
	encs := testEncoders(t)
	s, err := NewShardedIndex(ART, encs[core.SingleChar], 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if err := s.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	const n = 300
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("reg-key-%04d", i))
		if err := s.Put(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		s.Get(k)
	}
	s.Scan(nil, nil, func(_ []byte, _ uint64) bool { return true })
	snap := reg.Snapshot()
	if got := snap["hope_index_get_total"]; got != n {
		t.Fatalf("hope_index_get_total = %v, want %d", got, n)
	}
	if got := snap["hope_index_put_total"]; got != n {
		t.Fatalf("hope_index_put_total = %v, want %d", got, n)
	}
	if got := snap["hope_index_scan_total"]; got != 1 {
		t.Fatalf("hope_index_scan_total = %v, want 1", got)
	}
	// Scans record every invocation, so the latency series must be live.
	if snap["hope_index_scan_max_us"] <= 0 {
		t.Fatalf("hope_index_scan_max_us = %v, want > 0", snap["hope_index_scan_max_us"])
	}
	if got := snap["hope_index_len"]; got != n {
		t.Fatalf("hope_index_len = %v, want %d", got, n)
	}
	if snap["hope_index_shards"] != 4 {
		t.Fatalf("hope_index_shards = %v, want 4", snap["hope_index_shards"])
	}
	// Double registration must fail loudly, not shadow.
	if err := s.RegisterMetrics(reg); err == nil {
		t.Fatal("second RegisterMetrics on the same registry succeeded, want duplicate error")
	}
}

// TestInstrumentedGetZeroAlloc pins the always-on instrumentation cost on
// the hottest path: ShardedIndex.Get and AdaptiveIndex.Get stay zero-alloc
// with metrics recording (one striped atomic add per op, a clock read on
// the 1-in-64 sampled ops).
func TestInstrumentedGetZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; zero-alloc steady state not reachable")
	}
	keys := adversarialCorpus()
	encs := testEncoders(t)

	s := loadSharded(t, ART, encs[core.DoubleChar], 8, keys)
	for _, k := range keys {
		s.Get(k)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		s.Get(keys[i%len(keys)])
		i++
	})
	if allocs >= 0.5 {
		t.Fatalf("instrumented ShardedIndex.Get allocates %.2f/op, want 0", allocs)
	}

	a, err := NewAdaptiveIndex(ART, AdaptiveOptions{
		Scheme: core.SingleChar, Shards: 8, Manual: true,
		Lifecycle: lifecycle.Config{ReservoirSize: 256, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, k := range keys {
		if err := a.Put(k, uint64(j)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		a.Get(k)
	}
	i = 0
	allocs = testing.AllocsPerRun(2000, func() {
		a.Get(keys[i%len(keys)])
		i++
	})
	if allocs >= 0.5 {
		t.Fatalf("instrumented AdaptiveIndex.Get allocates %.2f/op, want 0", allocs)
	}
}

// eventTypes compresses a trace to "type" or "type@shard" tokens for
// exact-sequence assertions.
func eventTypes(evs []telemetry.Event) []string {
	out := make([]string, 0, len(evs))
	for _, e := range evs {
		if e.Shard >= 0 {
			out = append(out, fmt.Sprintf("%s@%d", e.Type, e.Shard))
		} else {
			out = append(out, e.Type)
		}
	}
	return out
}

// TestAdaptiveEventTraceFaultedRebuild asserts the exact event sequence a
// faulted-then-recovered rebuild leaves behind: the first Rebuild is
// killed at the cutover checkpoint (every shard already copied and
// flipped) and must trace through abort into backoff; after disarming the
// plan, the second completes and ends in cutover. The same trace must be
// retrievable over the HTTP debug surface.
func TestAdaptiveEventTraceFaultedRebuild(t *testing.T) {
	a, err := NewAdaptiveIndex(BTree, AdaptiveOptions{
		Scheme: core.SingleChar, Shards: 2, Manual: true,
		Lifecycle: lifecycle.Config{ReservoirSize: 256, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(1, fault.Rule{Point: "cutover", Shard: -1, Kind: fault.Error, Once: true})
	a.injector = plan
	for i := 0; i < 400; i++ {
		if err := a.Put([]byte(fmt.Sprintf("evt-key-%05d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.Trace().Snapshot()) != 0 {
		t.Fatalf("trace not empty before any rebuild: %v", eventTypes(a.Trace().Snapshot()))
	}

	if err := a.Rebuild(); err == nil {
		t.Fatal("faulted rebuild succeeded, want injected error")
	}
	want := []string{
		"trigger", "build-start", "build-done", "migrate-start",
		"shard-copied@0", "shard-flipped@0", "shard-copied@1", "shard-flipped@1",
		"abort", "backoff",
	}
	got := eventTypes(a.Trace().Snapshot())
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("faulted rebuild trace = %v, want %v", got, want)
	}
	evs := a.Trace().Snapshot()
	if evs[0].Detail != "explicit" {
		t.Fatalf("trigger detail = %q, want \"explicit\"", evs[0].Detail)
	}
	if !strings.Contains(evs[8].Detail, "injected") {
		t.Fatalf("abort detail = %q, want the injected error", evs[8].Detail)
	}
	if !strings.Contains(evs[9].Detail, "failures=1") {
		t.Fatalf("backoff detail = %q, want failures=1", evs[9].Detail)
	}

	plan.Disarm()
	if err := a.Rebuild(); err != nil {
		t.Fatalf("recovered rebuild: %v", err)
	}
	want = append(want,
		"trigger", "build-start", "build-done", "migrate-start",
		"shard-copied@0", "shard-flipped@0", "shard-copied@1", "shard-flipped@1",
		"cutover",
	)
	got = eventTypes(a.Trace().Snapshot())
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered rebuild trace = %v, want %v", got, want)
	}
	all := a.Trace().Snapshot()
	if cut := all[len(all)-1]; !strings.Contains(cut.Detail, "gen=1") || cut.DurNs <= 0 {
		t.Fatalf("cutover event = %+v, want gen=1 detail and positive duration", cut)
	}
	for i, e := range all {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d, want gap-free ordering", i, e.Seq)
		}
	}

	// The same story must be visible over the wire.
	reg := telemetry.NewRegistry()
	if err := a.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(telemetry.Handler(reg, a.Trace()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire []telemetry.Event
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(eventTypes(wire)) != fmt.Sprint(want) {
		t.Fatalf("/debug/events trace = %v, want %v", eventTypes(wire), want)
	}
	m, err := telemetry.Scrape(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if m["hope_lifecycle_rebuilds_total"] != 1 {
		t.Fatalf("hope_lifecycle_rebuilds_total = %v, want 1", m["hope_lifecycle_rebuilds_total"])
	}
	if m["hope_lifecycle_aborts_total"] != 1 {
		t.Fatalf("hope_lifecycle_aborts_total = %v, want 1", m["hope_lifecycle_aborts_total"])
	}
	if m["hope_lifecycle_generation"] != 1 {
		t.Fatalf("hope_lifecycle_generation = %v, want 1", m["hope_lifecycle_generation"])
	}
}

// TestAdaptiveTraceDriftReason checks that an automatic first-build
// trigger records its lifecycle reason rather than "explicit".
func TestAdaptiveTraceDriftReason(t *testing.T) {
	a, err := NewAdaptiveIndex(ART, AdaptiveOptions{
		Scheme: core.SingleChar, Shards: 2,
		Lifecycle: lifecycle.Config{ReservoirSize: 128, BuildAfter: 200, CheckEvery: 64, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000 && a.Generation() == 0; i++ {
		if err := a.Put([]byte(fmt.Sprintf("drift-key-%05d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	a.Quiesce()
	evs := a.Trace().Snapshot()
	if len(evs) == 0 {
		t.Fatal("no events after automatic first build")
	}
	if evs[0].Type != "trigger" || evs[0].Detail != "first-build" {
		t.Fatalf("first event = %+v, want trigger/first-build", evs[0])
	}
	if last := evs[len(evs)-1]; last.Type != "cutover" {
		t.Fatalf("last event = %+v, want cutover", last)
	}
}
