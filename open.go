package hope

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// openConfig accumulates Open's functional options before dispatch.
type openConfig struct {
	enc       *core.Encoder
	encSet    bool
	shards    int
	shardsSet bool
	rangePart bool
	corpus    [][]byte
	adaptive  *AdaptiveOptions

	snapDir  string
	snapKeep int
	snapFS   snapshot.VFS
}

// Option configures Open. Options compose: WithEncoder names the
// dictionary, WithShards and WithRangePartitioner select and shape the
// concurrent layer, WithAdaptive upgrades to the lifecycle-managed index.
type Option func(*openConfig)

// WithEncoder supplies the HOPE encoder (dictionary) the store compresses
// keys with; omit it for an uncompressed store. The encoder is captured as
// the build template — its read-only dictionary is shared, its mutable
// state is not — and must not be used directly afterwards (clone it first
// if independent use is needed). With WithAdaptive the encoder becomes the
// generation-0 dictionary (AdaptiveOptions.Encoder).
func WithEncoder(enc *Encoder) Option {
	return func(c *openConfig) { c.enc = enc; c.encSet = true }
}

// WithShards selects the concurrent lock-striped implementation with n
// shards (rounded up to a power of two; n <= 0 selects DefaultShards).
// Without it — and without WithRangePartitioner or WithAdaptive — Open
// returns the single-goroutine Index.
func WithShards(n int) Option {
	return func(c *openConfig) { c.shards = n; c.shardsSet = true }
}

// WithRangePartitioner lays the shards out as disjoint ascending key
// intervals instead of hash stripes, so short scans touch only the shards
// their bounds overlap. corpus, when non-nil, is a sample of the expected
// key population from which the split points are drawn; with a nil corpus
// the partition starts unseeded and the first Bulk into the empty store
// seeds it. Implies a sharded store (DefaultShards unless WithShards is
// also given). With WithAdaptive the corpus is ignored — each adaptive
// generation re-samples its split points from the lifecycle reservoir.
func WithRangePartitioner(corpus [][]byte) Option {
	return func(c *openConfig) { c.rangePart = true; c.corpus = corpus }
}

// WithAdaptive selects the lifecycle-managed AdaptiveIndex: online
// sampling, drift detection, and background re-encode migration (see
// AdaptiveOptions). Other options override the corresponding fields of
// opts: WithEncoder sets opts.Encoder, WithShards sets opts.Shards, and
// WithRangePartitioner sets opts.Partition = RangePartitioned.
func WithAdaptive(opts AdaptiveOptions) Option {
	return func(c *openConfig) { c.adaptive = &opts }
}

// WithSnapshotDir enables crash-safe persistence: Open returns a
// *Persistent (behind the Store interface) that snapshots into dir and —
// when dir already holds a valid snapshot — restores the newest good
// generation instead of starting empty. Restore is structural: the
// snapshot's store kind, shard count, partition layout, and dictionary
// override the caller's shape options, which only apply on a first boot
// into an empty directory (lifecycle tuning from WithAdaptive still
// applies either way). If every generation on disk is torn or corrupt,
// Open fails with the typed error rather than serving a partial index.
func WithSnapshotDir(dir string) Option {
	return func(c *openConfig) { c.snapDir = dir }
}

// WithSnapshotRetain sets how many committed snapshot generations are
// kept on disk (default DefaultSnapshotRetain; minimum 1 — the newest
// generation is never pruned).
func WithSnapshotRetain(n int) Option {
	return func(c *openConfig) { c.snapKeep = n }
}

// WithSnapshotFS substitutes the filesystem every snapshot I/O goes
// through — the crash suites wrap the real one with snapshot.Faulty so a
// fault plan can kill a commit at any write/fsync/rename checkpoint. Nil
// (the default) uses the real filesystem.
func WithSnapshotFS(fs snapshot.VFS) Option {
	return func(c *openConfig) { c.snapFS = fs }
}

// Open constructs a Store over the named backend, selecting the
// implementation from the options:
//
//	Open(BTree)                                  // single-goroutine Index, uncompressed
//	Open(ART, WithEncoder(enc))                  // compressed Index
//	Open(ART, WithEncoder(enc), WithShards(16))  // lock-striped ShardedIndex
//	Open(ART, WithEncoder(enc), WithShards(16),
//	     WithRangePartitioner(corpus))           // range-partitioned ShardedIndex
//	Open(ART, WithAdaptive(AdaptiveOptions{      // lifecycle-managed AdaptiveIndex
//	     Scheme: DoubleChar, Shards: 16}))
//
// Open is the one constructor new code should use; the per-type
// constructors it consolidates (NewIndex, NewShardedIndex,
// NewRangeShardedIndex, NewAdaptiveIndex) remain as deprecated wrappers.
// Callers needing implementation-specific surface (MemoryUsage, Stats,
// Rebuild, ...) type-assert the returned Store to the concrete type the
// options imply.
func Open(backend Backend, opts ...Option) (Store, error) {
	var c openConfig
	for _, o := range opts {
		o(&c)
	}
	if c.snapDir != "" {
		return openPersistent(backend, &c)
	}
	return buildStore(backend, &c)
}

// buildStore is Open's option dispatch for a fresh (non-restored) store.
func buildStore(backend Backend, c *openConfig) (Store, error) {
	if c.adaptive != nil {
		ao := *c.adaptive
		if c.encSet {
			if ao.Encoder != nil {
				return nil, fmt.Errorf("hope: both WithEncoder and AdaptiveOptions.Encoder are set")
			}
			ao.Encoder = c.enc
		}
		if c.shardsSet {
			ao.Shards = c.shards
		}
		if c.rangePart {
			ao.Partition = RangePartitioned
		}
		return NewAdaptiveIndex(backend, ao)
	}
	if c.rangePart {
		return NewRangeShardedIndex(backend, c.enc, c.shards, c.corpus)
	}
	if c.shardsSet {
		return NewShardedIndex(backend, c.enc, c.shards)
	}
	return NewIndex(backend, c.enc)
}

// ParseScheme maps a scheme name to its Scheme: the canonical
// Scheme.String() forms ("Single-Char", "3-Grams", "ALM-Improved", ...),
// case-insensitively. It is the -scheme flag parser of the cmds.
func ParseScheme(name string) (Scheme, error) {
	for _, s := range []Scheme{SingleChar, DoubleChar, ALM, ThreeGrams, FourGrams, ALMImproved} {
		if strings.EqualFold(name, s.String()) {
			return s, nil
		}
	}
	return 0, fmt.Errorf("hope: unknown scheme %q (want Single-Char, Double-Char, ALM, 3-Grams, 4-Grams or ALM-Improved)", name)
}
