package hope

import (
	"bytes"
	"sort"
	"sync/atomic"

	"repro/internal/core"
)

// A Partitioner maps original keys to ShardedIndex shards. Two policies
// ship with the package:
//
//   - HashPartitioner (the default): FNV-hash the original key bytes.
//     Point operations spread perfectly, but every range scan must consult
//     every shard — the hash scatters adjacent keys across all of them.
//   - RangePartitioner: route by sampled split points, so each shard owns
//     one contiguous interval of the keyspace. Short scans touch only the
//     one or two shards whose intervals overlap the query, skip the k-way
//     merge entirely, and stream straight off a single cursor.
//
// Split points live in ORIGINAL key space. Because HOPE encoding is
// order-preserving, a contiguous original-key interval is a contiguous
// encoded-key interval, so the partition this induces is exactly the
// partition sampled split points over encoded keys would induce — while
// routing stays independent of any particular dictionary. That
// independence is what lets AdaptiveIndex generations with different
// dictionaries (and different split points) coexist during a migration.
//
// Implementations must be safe for concurrent use: every index operation
// routes through Shard.
type Partitioner interface {
	// NumShards returns the shard count (fixed for the partitioner's life).
	NumShards() int
	// Shard routes one original key to its shard in [0, NumShards()).
	Shard(key []byte) int
	// Ordered reports whether shards hold pairwise-disjoint, ascending
	// key intervals — the property that lets a scan visit shards
	// sequentially (in shard order) with no merge, and prune shards whose
	// interval cannot overlap the query.
	Ordered() bool
	// Splits returns the ordered split points (original key space) for an
	// ordered partitioner: len(Splits()) == NumShards()-1, and shard i
	// holds keys k with Splits()[i-1] <= k < Splits()[i] (boundaries at
	// the ends are unbounded). Unordered partitioners, unseeded range
	// partitioners, and single-shard partitioners return nil.
	Splits() [][]byte
}

// PartitionMode selects how an AdaptiveIndex lays out each generation's
// tree shards.
type PartitionMode int

const (
	// HashPartitioned spreads keys by hash — the default; perfect point-op
	// balance, every-shard scans.
	HashPartitioned PartitionMode = iota
	// RangePartitioned gives each shard a contiguous key interval from
	// split points sampled off the lifecycle reservoir (or the first bulk
	// corpus), so short scans touch only the overlapping shards. Every
	// rebuild re-samples the split points from current traffic, so drift
	// migration doubles as shard re-balancing.
	RangePartitioned
)

func (m PartitionMode) String() string {
	switch m {
	case HashPartitioned:
		return "hash"
	case RangePartitioned:
		return "range"
	}
	return "PartitionMode(?)"
}

// HashPartitioner is the default policy: FNV-1a over the original key
// bytes, masked to a power-of-two shard count (see shardHash).
type HashPartitioner struct {
	n    int
	mask uint64
}

// NewHashPartitioner returns a hash partitioner over nShards shards
// (rounded up to a power of two; <= 0 selects DefaultShards()).
func NewHashPartitioner(nShards int) *HashPartitioner {
	if nShards <= 0 {
		nShards = DefaultShards()
	}
	nShards = ceilPow2(nShards)
	return &HashPartitioner{n: nShards, mask: uint64(nShards - 1)}
}

// NumShards returns the shard count.
func (p *HashPartitioner) NumShards() int { return p.n }

// Shard routes by FNV hash of the original key bytes.
func (p *HashPartitioner) Shard(key []byte) int { return int(shardHash(key) & p.mask) }

// shardOfHash routes a pre-computed shardHash — the adaptive layer hashes
// once per operation and reuses it for every generation.
func (p *HashPartitioner) shardOfHash(h uint64) int { return int(h & p.mask) }

// Ordered reports false: hashed shards interleave the keyspace.
func (p *HashPartitioner) Ordered() bool { return false }

// Splits returns nil (hash shards have no boundaries).
func (p *HashPartitioner) Splits() [][]byte { return nil }

// RangePartitioner routes by split points: shard i owns the keys between
// split i-1 (inclusive) and split i (exclusive). Construct it seeded
// (NewRangePartitioner with splits from RangeSplits) or unseeded
// (NewUnseededRangePartitioner), in which case every key routes to shard 0
// until the first ShardedIndex.Bulk seeds split points from its corpus.
// Duplicate split points are legal and produce empty shards; so does any
// split the live keys never straddle — scans and point ops are
// partition-oblivious, only the load balance suffers.
type RangePartitioner struct {
	n      int
	splits atomic.Pointer[[][]byte] // nil until seeded; owned, never mutated
}

// NewRangePartitioner returns a range partitioner over len(splits)+1
// shards using the given ascending split points (deep-copied). Use
// RangeSplits to derive balanced split points from a sample of the
// expected corpus.
func NewRangePartitioner(splits [][]byte) *RangePartitioner {
	p := &RangePartitioner{n: len(splits) + 1}
	if len(splits) > 0 {
		p.seed(splits)
	}
	return p
}

// NewUnseededRangePartitioner returns a range partitioner over nShards
// shards (rounded up to a power of two; <= 0 selects DefaultShards()) with
// no split points yet: every key routes to shard 0 until the owning
// ShardedIndex's first Bulk samples split points from its corpus.
func NewUnseededRangePartitioner(nShards int) *RangePartitioner {
	if nShards <= 0 {
		nShards = DefaultShards()
	}
	return &RangePartitioner{n: ceilPow2(nShards)}
}

// seed installs deep-copied split points; the slice count must be
// n-1 or the partitioner adopts len(splits)+1 shards. Seeding is a
// one-time transition from the unseeded state and must happen before any
// key is stored under the final routing (ShardedIndex.Bulk enforces this
// by seeding only an empty index).
func (p *RangePartitioner) seed(splits [][]byte) {
	cp := make([][]byte, len(splits))
	for i, s := range splits {
		cp[i] = append([]byte(nil), s...)
	}
	if len(cp)+1 != p.n {
		p.n = len(cp) + 1
	}
	p.splits.Store(&cp)
}

// seeded reports whether split points are installed.
func (p *RangePartitioner) seeded() bool { return p.splits.Load() != nil }

// NumShards returns the shard count.
func (p *RangePartitioner) NumShards() int { return p.n }

// Shard binary-searches the split points: the shard index is the number of
// splits at or below the key.
func (p *RangePartitioner) Shard(key []byte) int {
	sp := p.splits.Load()
	if sp == nil {
		return 0
	}
	s := *sp
	return sort.Search(len(s), func(i int) bool { return bytes.Compare(s[i], key) > 0 })
}

// Ordered reports true: shards hold disjoint ascending intervals (the
// unseeded state trivially so — every key is in shard 0).
func (p *RangePartitioner) Ordered() bool { return true }

// Splits returns the installed split points (shared, read-only; nil until
// seeded).
func (p *RangePartitioner) Splits() [][]byte {
	sp := p.splits.Load()
	if sp == nil {
		return nil
	}
	return *sp
}

// rangeSplitSampleCap bounds the reservoir RangeSplits draws split points
// from: enough resolution for 256 shards' quantiles, small enough that
// seeding inside Bulk is a rounding error next to the load itself.
const rangeSplitSampleCap = 8192

// RangeSplits derives nShards-1 ascending split points from a corpus of
// original keys: the corpus is reservoir-sampled (core.Sampler, so a
// corpus too large to sort whole still yields unbiased quantiles), the
// sample is sorted, and the splits are its evenly spaced quantiles —
// giving every shard an approximately equal share of the sampled
// distribution. Skewed corpora are legal: duplicate quantiles produce
// empty shards, which the index serves correctly (only balance suffers).
// The corpus is read, never retained; determinism follows from the seed.
func RangeSplits(corpus [][]byte, nShards int, seed int64) [][]byte {
	if nShards <= 1 || len(corpus) == 0 {
		return nil
	}
	capacity := rangeSplitSampleCap
	if len(corpus) < capacity {
		capacity = len(corpus)
	}
	sampler := core.NewSampler(capacity, seed)
	for _, k := range corpus {
		sampler.Add(k)
	}
	sample := sampler.Snapshot()
	sort.Slice(sample, func(i, j int) bool { return bytes.Compare(sample[i], sample[j]) < 0 })
	splits := make([][]byte, 0, nShards-1)
	for i := 1; i < nShards; i++ {
		splits = append(splits, sample[i*len(sample)/nShards])
	}
	return splits
}
