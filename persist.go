package hope

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/snapshot"
	"repro/internal/telemetry"
)

// Typed persistence failures, re-exported from internal/snapshot so
// callers classify restore outcomes without importing an internal package:
//
//   - ErrSnapshotTorn: a snapshot file ends before its footer — the
//     classic crash-mid-write shape. LoadNewest falls back to the previous
//     generation; Open only surfaces this when no valid generation exists.
//   - ErrSnapshotCorrupt: a snapshot file is structurally complete but
//     fails validation (bad magic, CRC mismatch, trailing bytes, malformed
//     payload). Same fallback behavior.
//
// Open with a snapshot directory either restores a fully-validated
// generation or fails with a typed error — it never serves a partially
// restored index.
var (
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
	ErrSnapshotTorn    = snapshot.ErrTorn
)

// DefaultSnapshotRetain is how many committed snapshot generations are
// kept on disk when WithSnapshotRetain is not given: the newest plus one
// fallback.
const DefaultSnapshotRetain = 2

// Persistent adds crash-safe snapshot persistence to any Store. It is
// what Open returns when WithSnapshotDir is given: the embedded Store
// serves all traffic untouched, and Snapshot serializes a consistent
// image of it — dictionary included — to a new generation file using a
// write-temp, fsync, rename commit (see internal/snapshot). A later Open
// over the same directory restores the newest valid generation without
// re-encoding a single key: the dictionary is reassembled from its
// serialized entries and the stored encodings bulk-load shard-parallel.
//
// Snapshot may be called concurrently with serving traffic on the
// concurrent stores (ShardedIndex, AdaptiveIndex); the image is per-shard
// consistent, the same contract Len and Scan give. Concurrent Snapshot
// calls serialize. For the single-goroutine Index the caller must not
// mutate during Snapshot, the type's usual contract.
type Persistent struct {
	Store

	dir      snapshot.Dir
	keep     int
	restored bool

	mu     sync.Mutex // serializes Snapshot
	gen    atomic.Uint64
	closed atomic.Bool

	snapStats    *telemetry.OpStats
	restoreStats *telemetry.OpStats
	lastBytes    atomic.Int64
	lastKeys     atomic.Int64
	trace        *telemetry.EventTrace
}

// openPersistent implements Open's WithSnapshotDir path: restore the
// newest valid generation, or build a fresh store from the options when
// the directory holds no snapshot at all.
func openPersistent(backend Backend, c *openConfig) (*Persistent, error) {
	fs := c.snapFS
	if fs == nil {
		fs = snapshot.OS()
	}
	keep := c.snapKeep
	if keep <= 0 {
		keep = DefaultSnapshotRetain
	}
	p := &Persistent{
		dir:          snapshot.Dir{FS: fs, Path: c.snapDir},
		keep:         keep,
		snapStats:    telemetry.NewOpStats(1),
		restoreStats: telemetry.NewOpStats(1),
	}
	snap, err := p.dir.LoadNewest()
	var restoreDur time.Duration
	switch {
	case errors.Is(err, snapshot.ErrNoSnapshot):
		st, berr := buildStore(backend, c)
		if berr != nil {
			return nil, berr
		}
		p.Store = st
	case err != nil:
		// Generations exist but none validates: refuse to serve rather
		// than guess. The error carries the newest generation's typed
		// failure (ErrSnapshotTorn / ErrSnapshotCorrupt).
		return nil, fmt.Errorf("hope: restore from %s: %w", c.snapDir, err)
	default:
		t := p.restoreStats.Begin(0)
		start := time.Now()
		st, rerr := restoreStore(backend, snap, c)
		restoreDur = time.Since(start)
		p.restoreStats.End(t)
		if rerr != nil {
			return nil, fmt.Errorf("hope: restore from %s: %w", c.snapDir, rerr)
		}
		p.Store = st
		p.gen.Store(snap.Generation)
		p.restored = true
	}
	if tr, ok := p.Store.(Traced); ok {
		// Share the store's trace so snapshot events interleave with
		// lifecycle events in one timeline.
		p.trace = tr.Trace()
	} else {
		p.trace = telemetry.NewEventTrace(0)
	}
	if p.restored {
		p.lastKeys.Store(int64(p.Store.Len()))
		p.trace.Emit("restore", -1, restoreDur.Nanoseconds(),
			fmt.Sprintf("gen=%d keys=%d", p.gen.Load(), p.Store.Len()))
	}
	return p, nil
}

// Snapshot serializes the current store contents as the next generation
// and commits it durably (write-temp, fsync, rename, dirsync). The
// previous generation is retained until the new one is fully durable, so
// a crash at any instant leaves a valid generation on disk; older
// generations beyond the retain count are pruned after the commit.
func (p *Persistent) Snapshot() error {
	if p.closed.Load() {
		return ErrClosed
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	gen := p.gen.Load() + 1
	p.trace.Emit("snapshot-start", -1, 0, fmt.Sprintf("gen=%d", gen))
	t := p.snapStats.Begin(0)
	start := time.Now()
	var keys, size int
	err := p.dir.Commit(gen, func(w *snapshot.Writer) error {
		var derr error
		keys, size, derr = dumpStore(p.Store, w, p.trace)
		return derr
	})
	p.snapStats.End(t)
	if err != nil {
		p.trace.Emit("snapshot-abort", -1, time.Since(start).Nanoseconds(), err.Error())
		return err
	}
	p.gen.Store(gen)
	p.lastKeys.Store(int64(keys))
	p.lastBytes.Store(int64(size))
	p.trace.Emit("snapshot-commit", -1, time.Since(start).Nanoseconds(),
		fmt.Sprintf("gen=%d keys=%d bytes=%d", gen, keys, size))
	if perr := p.dir.Prune(p.keep); perr != nil {
		// Debris never threatens correctness (restore validates and steps
		// over it); record and carry on.
		p.trace.Emit("snapshot-prune-error", -1, 0, perr.Error())
	}
	return nil
}

// Generation returns the newest committed (or restored) snapshot
// generation; 0 means no snapshot exists yet.
func (p *Persistent) Generation() uint64 { return p.gen.Load() }

// Restored reports whether Open rebuilt this store from a snapshot (false
// means it started fresh).
func (p *Persistent) Restored() bool { return p.restored }

// Unwrap returns the underlying store, for callers needing
// implementation-specific surface (Stats, Rebuild, MemoryUsage, ...).
func (p *Persistent) Unwrap() Store { return p.Store }

// Close closes the underlying store (mutations start returning ErrClosed,
// reads keep serving — see Store) and finalizes persistence: subsequent
// Snapshot calls are refused with ErrClosed. Close does not snapshot
// implicitly; callers wanting a final image call Snapshot first, as the
// server's drain hook does. Idempotent.
func (p *Persistent) Close() error {
	p.closed.Store(true)
	return p.Store.Close()
}

// RegisterMetrics exposes the persistence instruments — snapshot and
// restore latencies plus generation/size gauges — alongside whatever the
// underlying store registers.
func (p *Persistent) RegisterMetrics(reg *telemetry.Registry) error {
	if ins, ok := p.Store.(Instrumented); ok {
		if err := ins.RegisterMetrics(reg); err != nil {
			return err
		}
	}
	if err := reg.Register("hope_snapshot", p.snapStats); err != nil {
		return err
	}
	if err := reg.Register("hope_restore", p.restoreStats); err != nil {
		return err
	}
	return registerGauges(reg, []namedGauge{
		{"hope_snapshot_generation", func() float64 { return float64(p.gen.Load()) }},
		{"hope_snapshot_last_keys", func() float64 { return float64(p.lastKeys.Load()) }},
		{"hope_snapshot_last_bytes", func() float64 { return float64(p.lastBytes.Load()) }},
		{"hope_snapshot_restored", func() float64 { return boolGauge(p.restored) }},
	})
}

// Trace returns the event trace snapshot/restore events are emitted to —
// the underlying store's own trace when it keeps one (so persistence and
// lifecycle events share a timeline), else a private ring.
func (p *Persistent) Trace() *telemetry.EventTrace { return p.trace }

// Quiesce forwards to the underlying store when it has background work to
// settle (AdaptiveIndex rebuilds); otherwise it is a no-op. Keeping
// Persistent a Quiescer preserves the server's drain ordering: quiesce,
// snapshot-on-drain, close.
func (p *Persistent) Quiesce() {
	if q, ok := p.Store.(Quiescer); ok {
		q.Quiesce()
	}
}

var (
	_ Store        = (*Persistent)(nil)
	_ Instrumented = (*Persistent)(nil)
	_ Traced       = (*Persistent)(nil)
)
