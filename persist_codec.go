package hope

import (
	"encoding/binary"
	"fmt"

	"repro/internal/dict"
	"repro/internal/hutucker"
)

// Section kinds of the hope-level snapshot format, layered on the framing
// internal/snapshot provides (which owns magic, CRCs, and the commit
// protocol; this file owns only the payload bytes inside each section).
//
//	secMeta  — exactly one, first: store shape (kind, backend, scheme,
//	           structural encoder options, partition, shards, splits).
//	secDict  — at most one: the serialized dictionary entries; present
//	           exactly when the meta scheme is >= 0 (compressed).
//	secRun   — Index/ShardedIndex: one per tree shard, the shard's stored
//	           (encoded) keys and values in encoded sort order.
//	secARun  — AdaptiveIndex: one per stripe, the stripe's live records in
//	           original-key order — original bytes, the stored encoding
//	           (when compressed), and the value. Storing both forms is what
//	           makes restore re-encode-free: the dictionary is reassembled
//	           from secDict and the stored forms load back verbatim.
const (
	secMeta uint8 = 1
	secDict uint8 = 2
	secRun  uint8 = 3
	secARun uint8 = 4
)

// Store kinds recorded in the meta section.
const (
	kindIndex    uint8 = 0
	kindSharded  uint8 = 1
	kindAdaptive uint8 = 2
)

// snapMeta is the decoded meta section: everything structural a restore
// needs before it touches a run payload. Structural truth lives in the
// snapshot, not in the caller's options — a restored store always has the
// dumped shape.
type snapMeta struct {
	storeKind uint8
	backend   Backend
	scheme    int32 // core.Scheme, or -1 when uncompressed
	alphabet  uint32
	forceBS   bool
	partition uint8 // 0 = hash, 1 = range
	shards    uint32
	maxKeyLen uint64
	keyCount  uint64
	splits    [][]byte // original-key-space split points (range partitions)
}

// --- little-endian append helpers -----------------------------------------

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendBytes(b []byte, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// payloadReader cursors over one section payload, latching the first
// error. Framing integrity is already CRC-proven by internal/snapshot, so
// a short or trailing payload here means a format mismatch — reported as
// ErrSnapshotCorrupt, never a partial result.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated section payload at offset %d", ErrSnapshotCorrupt, r.off)
	}
}

func (r *payloadReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *payloadReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *payloadReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// bytes returns the next length-prefixed byte string, aliasing the
// payload buffer; callers that retain it must copy (see ownedCopies).
func (r *payloadReader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || r.off+n > len(r.b) || n < 0 {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *payloadReader) bool() bool { return r.u8() != 0 }

// done reports the latched error, or flags trailing garbage — a payload
// must be consumed exactly.
func (r *payloadReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes in section payload", ErrSnapshotCorrupt, len(r.b)-r.off)
	}
	return nil
}

// --- meta section ----------------------------------------------------------

func encodeMeta(m snapMeta) []byte {
	b := make([]byte, 0, 64)
	b = appendU8(b, m.storeKind)
	b = appendBytes(b, []byte(m.backend))
	b = appendU32(b, uint32(m.scheme))
	b = appendU32(b, m.alphabet)
	b = appendBool(b, m.forceBS)
	b = appendU8(b, m.partition)
	b = appendU32(b, m.shards)
	b = appendU64(b, m.maxKeyLen)
	b = appendU64(b, m.keyCount)
	b = appendU32(b, uint32(len(m.splits)))
	for _, s := range m.splits {
		b = appendBytes(b, s)
	}
	return b
}

func decodeMeta(payload []byte) (snapMeta, error) {
	r := &payloadReader{b: payload}
	var m snapMeta
	m.storeKind = r.u8()
	m.backend = Backend(append([]byte(nil), r.bytes()...))
	m.scheme = int32(r.u32())
	m.alphabet = r.u32()
	m.forceBS = r.bool()
	m.partition = r.u8()
	m.shards = r.u32()
	m.maxKeyLen = r.u64()
	m.keyCount = r.u64()
	nSplits := int(r.u32())
	if r.err == nil && nSplits > 0 {
		m.splits = make([][]byte, 0, nSplits)
		for i := 0; i < nSplits; i++ {
			m.splits = append(m.splits, append([]byte(nil), r.bytes()...))
		}
	}
	if err := r.done(); err != nil {
		return snapMeta{}, err
	}
	if m.storeKind > kindAdaptive {
		return snapMeta{}, fmt.Errorf("%w: unknown store kind %d", ErrSnapshotCorrupt, m.storeKind)
	}
	return m, nil
}

// --- dictionary section ----------------------------------------------------

func encodeDict(entries []dict.Entry) []byte {
	n := 0
	for _, e := range entries {
		n += 4 + len(e.Boundary) + 1 + 1 + 8
	}
	b := make([]byte, 0, 4+n)
	b = appendU32(b, uint32(len(entries)))
	for _, e := range entries {
		b = appendBytes(b, e.Boundary)
		b = appendU8(b, e.SymbolLen)
		b = appendU8(b, e.Code.Len)
		b = appendU64(b, e.Code.Bits)
	}
	return b
}

func decodeDict(payload []byte) ([]dict.Entry, error) {
	r := &payloadReader{b: payload}
	count := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	entries := make([]dict.Entry, 0, count)
	for i := 0; i < count; i++ {
		boundary := append([]byte(nil), r.bytes()...)
		symLen := r.u8()
		codeLen := r.u8()
		bits := r.u64()
		entries = append(entries, dict.Entry{
			Boundary:  boundary,
			SymbolLen: symLen,
			Code:      hutucker.Code{Bits: bits, Len: codeLen},
		})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return entries, nil
}

// --- run sections ----------------------------------------------------------

// encodeRun serializes one tree shard's stored keys and values (secRun):
// u64 count, then per entry a length-prefixed stored key and a u64 value.
func encodeRun(keys [][]byte, vals []uint64) []byte {
	n := 8
	for _, k := range keys {
		n += 4 + len(k) + 8
	}
	b := make([]byte, 0, n)
	b = appendU64(b, uint64(len(keys)))
	for i, k := range keys {
		b = appendBytes(b, k)
		b = appendU64(b, vals[i])
	}
	return b
}

// decodeRun parses a secRun payload. Returned key slices alias payload.
func decodeRun(payload []byte) (keys [][]byte, vals []uint64, err error) {
	r := &payloadReader{b: payload}
	count := int(r.u64())
	if r.err != nil {
		return nil, nil, r.err
	}
	keys = make([][]byte, 0, count)
	vals = make([]uint64, 0, count)
	for i := 0; i < count; i++ {
		keys = append(keys, r.bytes())
		vals = append(vals, r.u64())
	}
	if err := r.done(); err != nil {
		return nil, nil, err
	}
	return keys, vals, nil
}

// encodeARun serializes one adaptive stripe (secARun): u64 count, then per
// live record the original key, the stored encoding (compressed snapshots
// only), and the value, in original-key order.
func encodeARun(origs, encs [][]byte, vals []uint64) []byte {
	n := 8
	for i, k := range origs {
		n += 4 + len(k) + 8
		if encs != nil {
			n += 4 + len(encs[i])
		}
	}
	b := make([]byte, 0, n)
	b = appendU64(b, uint64(len(origs)))
	for i, k := range origs {
		b = appendBytes(b, k)
		if encs != nil {
			b = appendBytes(b, encs[i])
		}
		b = appendU64(b, vals[i])
	}
	return b
}

// decodeARun parses a secARun payload; compressed selects whether stored
// encodings are present. Returned slices alias payload.
func decodeARun(payload []byte, compressed bool) (origs, encs [][]byte, vals []uint64, err error) {
	r := &payloadReader{b: payload}
	count := int(r.u64())
	if r.err != nil {
		return nil, nil, nil, r.err
	}
	origs = make([][]byte, 0, count)
	vals = make([]uint64, 0, count)
	if compressed {
		encs = make([][]byte, 0, count)
	}
	for i := 0; i < count; i++ {
		origs = append(origs, r.bytes())
		if compressed {
			encs = append(encs, r.bytes())
		}
		vals = append(vals, r.u64())
	}
	if err := r.done(); err != nil {
		return nil, nil, nil, err
	}
	return origs, encs, vals, nil
}

// ownedCopies deep-copies key slices (typically aliasing a snapshot file
// buffer) into slices of one fresh backing array, the form backends may
// retain (they keep bulk-loaded keys by reference).
func ownedCopies(keys [][]byte) [][]byte {
	return copyAll(keys)
}
