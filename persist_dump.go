package hope

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/telemetry"
)

// This file is the dump half of the persistence layer: it serializes a
// live Store into the section stream a snapshot.Writer frames. Restore is
// persist_restore.go; the commit protocol and file format framing are
// internal/snapshot.

// dumpStore writes st's sections to w and reports how many keys and
// payload bytes it serialized. trace, when non-nil, receives a
// snapshot-section event per section.
func dumpStore(st Store, w *snapshot.Writer, trace *telemetry.EventTrace) (keys, bytes int, err error) {
	switch s := st.(type) {
	case *Index:
		return dumpIndex(s, w, trace)
	case *ShardedIndex:
		return dumpSharded(s, w, trace)
	case *AdaptiveIndex:
		return dumpAdaptive(s, w, trace)
	case *Persistent:
		return dumpStore(s.Store, w, trace)
	}
	return 0, 0, fmt.Errorf("hope: cannot snapshot store of type %T", st)
}

// emitSection writes one section and its trace event.
func emitSection(w *snapshot.Writer, trace *telemetry.EventTrace, kind uint8, shard int, payload []byte) (int, error) {
	if err := w.Section(kind, shard, payload); err != nil {
		return 0, err
	}
	if trace != nil {
		trace.Emit("snapshot-section", shard, 0, fmt.Sprintf("kind=%d bytes=%d", kind, len(payload)))
	}
	return len(payload), nil
}

// encoderMeta fills the scheme and structural-option fields of a meta
// section from enc (nil = uncompressed).
func encoderMeta(m *snapMeta, enc *core.Encoder) {
	m.scheme = -1
	if enc == nil {
		return
	}
	m.scheme = int32(enc.Scheme())
	so := enc.StructuralOptions()
	m.alphabet = uint32(so.DoubleCharAlphabet)
	m.forceBS = so.ForceBinarySearchDict
}

// writeDict emits the dictionary section when the store is compressed.
func writeDict(w *snapshot.Writer, trace *telemetry.EventTrace, enc *core.Encoder) (int, error) {
	if enc == nil {
		return 0, nil
	}
	return emitSection(w, trace, secDict, -1, encodeDict(enc.Entries()))
}

// dumpIndex serializes a single-goroutine Index: the meta and dictionary
// sections, then one secRun with the tree's stored keys in encoded order.
// The Index concurrency contract applies — the caller must not mutate the
// index while the dump runs.
func dumpIndex(x *Index, w *snapshot.Writer, trace *telemetry.EventTrace) (keys, size int, err error) {
	m := snapMeta{
		storeKind: kindIndex,
		backend:   x.backend,
		shards:    1,
		maxKeyLen: uint64(x.maxKeyLen),
		keyCount:  uint64(x.Len()),
	}
	encoderMeta(&m, x.enc)
	n, err := emitSection(w, trace, secMeta, -1, encodeMeta(m))
	if err != nil {
		return 0, 0, err
	}
	size += n
	if n, err = writeDict(w, trace, x.enc); err != nil {
		return 0, 0, err
	}
	size += n

	var ks [][]byte
	var vs []uint64
	x.be.scan([]byte{}, nil, false, func(k []byte, v uint64) bool {
		ks = append(ks, append([]byte(nil), k...))
		vs = append(vs, v)
		return true
	})
	if n, err = emitSection(w, trace, secRun, 0, encodeRun(ks, vs)); err != nil {
		return 0, 0, err
	}
	return len(ks), size + n, nil
}

// dumpSharded serializes a ShardedIndex: meta (including the partition
// shape and its split points), the dictionary, then one secRun per shard,
// each drained in a single pass under that shard's read lock. Consistency
// is per-shard — the same moment-in-time contract Len and Scan give under
// concurrent writers.
func dumpSharded(s *ShardedIndex, w *snapshot.Writer, trace *telemetry.EventTrace) (keys, size int, err error) {
	m := snapMeta{
		storeKind: kindSharded,
		backend:   s.backend,
		shards:    uint32(len(s.shards)),
		maxKeyLen: uint64(s.maxKeyLen.Load()),
		splits:    s.part.Splits(),
	}
	if s.part.Ordered() {
		m.partition = 1
	}
	encoderMeta(&m, s.enc)

	// Gather every shard's run first so the meta key count is exact for
	// this dump (advisory under concurrent writers, like Len).
	runs := make([][][]byte, len(s.shards))
	vals := make([][]uint64, len(s.shards))
	total := 0
	for i := range s.shards {
		var ks [][]byte
		var vs []uint64
		s.scanShard(i, []byte{}, nil, false, func(k []byte, v uint64) bool {
			ks = append(ks, append([]byte(nil), k...))
			vs = append(vs, v)
			return true
		})
		runs[i], vals[i] = ks, vs
		total += len(ks)
	}
	m.keyCount = uint64(total)

	n, err := emitSection(w, trace, secMeta, -1, encodeMeta(m))
	if err != nil {
		return 0, 0, err
	}
	size += n
	if n, err = writeDict(w, trace, s.enc); err != nil {
		return 0, 0, err
	}
	size += n
	for i := range runs {
		if n, err = emitSection(w, trace, secRun, i, encodeRun(runs[i], vals[i])); err != nil {
			return 0, 0, err
		}
		size += n
	}
	return total, size, nil
}

// dumpAdaptive serializes an AdaptiveIndex without quiescing it: the
// serving generation (and its dictionary) is pinned once under genMu, then
// each stripe's live records are collected under that stripe's read lock
// from its authoritative write generation — the generation that has seen
// every write, even mid-migration — sorted by original key, and batch
// re-encoded through the pinned dictionary outside all locks. The snapshot
// is per-stripe consistent (the Len contract); it never blocks a rebuild
// and a rebuild never blocks it.
//
// Lifecycle state (reservoir contents, drift baselines, rebuild counters)
// is deliberately not persisted: a restored index starts its lifecycle
// fresh on the restored dictionary and re-learns the traffic distribution
// from live writes.
func dumpAdaptive(a *AdaptiveIndex, w *snapshot.Writer, trace *telemetry.EventTrace) (keys, size int, err error) {
	a.genMu.Lock()
	gen := a.cur
	a.genMu.Unlock()
	enc := gen.enc

	m := snapMeta{
		storeKind: kindAdaptive,
		backend:   a.backend,
		shards:    uint32(len(a.shards)),
		maxKeyLen: uint64(a.maxKeyLen.Load()),
		splits:    gen.idx.part.Splits(),
	}
	if a.opts.Partition == RangePartitioned {
		m.partition = 1
	}
	encoderMeta(&m, enc)

	// Collect each stripe's live records. The stripe's write[0] generation
	// is authoritative (every insert and delete lands there first), so a
	// record collected here is live at collection time regardless of any
	// concurrent migration. Record-store append order is arrival order, not
	// key order — sort each stripe so the run loads back in encoded order.
	type stripeRun struct {
		origs [][]byte
		vals  []uint64
	}
	stripes := make([]stripeRun, len(a.shards))
	total := 0
	for i, sh := range a.shards {
		sh.mu.RLock()
		srecs := sh.write[0].recs[i]
		run := stripeRun{
			origs: make([][]byte, 0, srecs.live),
			vals:  make([]uint64, 0, srecs.live),
		}
		for _, r := range srecs.recs {
			if r.dead {
				continue
			}
			run.origs = append(run.origs, append([]byte(nil), r.key...))
			run.vals = append(run.vals, r.val)
		}
		sh.mu.RUnlock()
		sort.Sort(&stripeSorter{run.origs, run.vals})
		stripes[i] = run
		total += len(run.origs)
	}
	m.keyCount = uint64(total)

	n, err := emitSection(w, trace, secMeta, -1, encodeMeta(m))
	if err != nil {
		return 0, 0, err
	}
	size += n
	if n, err = writeDict(w, trace, enc); err != nil {
		return 0, 0, err
	}
	size += n
	for i := range stripes {
		var encs [][]byte
		if enc != nil {
			// EncodeAll is safe for concurrent use (read-only dictionary,
			// private appenders), so the serving template encodes the batch
			// while traffic keeps flowing.
			encs = enc.EncodeAll(stripes[i].origs)
		}
		if n, err = emitSection(w, trace, secARun, i, encodeARun(stripes[i].origs, encs, stripes[i].vals)); err != nil {
			return 0, 0, err
		}
		size += n
	}
	return total, size, nil
}

// stripeSorter sorts one stripe's (original key, value) pairs by key.
// Original-key order is encoded order under any HOPE dictionary (the
// order-preservation invariant), so the dump needs no encode to sort.
type stripeSorter struct {
	keys [][]byte
	vals []uint64
}

func (s *stripeSorter) Len() int           { return len(s.keys) }
func (s *stripeSorter) Less(i, j int) bool { return bytes.Compare(s.keys[i], s.keys[j]) < 0 }
func (s *stripeSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}
