package hope

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/snapshot"
)

// This file is the restore half of the persistence layer: it rebuilds a
// live Store from a validated snapshot.Snapshot. The defining property is
// that no key is re-encoded: the dictionary is reassembled from its
// serialized entries (core.Reassemble skips symbol selection and code
// assignment entirely), and the stored encodings in the run sections load
// back verbatim through each backend's bulk path, shard-parallel.

// restoreStore rebuilds the store a snapshot serialized. backend is the
// caller's requested backend and must match the dumped one — a snapshot
// is not a migration tool. The caller's shape options (shards, partition)
// are ignored in favor of the snapshot's structural truth; for an
// adaptive store c.adaptive still supplies the lifecycle tuning
// (thresholds, timeouts, Manual) the snapshot deliberately does not carry.
func restoreStore(backend Backend, snap *snapshot.Snapshot, c *openConfig) (Store, error) {
	if len(snap.Sections) == 0 || snap.Sections[0].Kind != secMeta {
		return nil, fmt.Errorf("%w: first section is not meta", ErrSnapshotCorrupt)
	}
	meta, err := decodeMeta(snap.Sections[0].Payload)
	if err != nil {
		return nil, err
	}
	if meta.backend != backend {
		return nil, fmt.Errorf("hope: snapshot holds a %s store, Open requested %s", meta.backend, backend)
	}
	if meta.shards < 1 {
		return nil, fmt.Errorf("%w: shard count %d", ErrSnapshotCorrupt, meta.shards)
	}
	if meta.partition == 1 && len(meta.splits) > 0 && len(meta.splits) != int(meta.shards)-1 {
		return nil, fmt.Errorf("%w: %d split points for %d shards", ErrSnapshotCorrupt, len(meta.splits), meta.shards)
	}
	if meta.storeKind == kindAdaptive && ceilPow2(int(meta.shards)) != int(meta.shards) {
		return nil, fmt.Errorf("%w: adaptive shard count %d is not a power of two", ErrSnapshotCorrupt, meta.shards)
	}

	var enc *core.Encoder
	rest := snap.Sections[1:]
	if meta.scheme >= 0 {
		if len(rest) == 0 || rest[0].Kind != secDict {
			return nil, fmt.Errorf("%w: compressed snapshot has no dictionary section", ErrSnapshotCorrupt)
		}
		entries, err := decodeDict(rest[0].Payload)
		if err != nil {
			return nil, err
		}
		enc, err = core.Reassemble(core.Scheme(meta.scheme), core.Options{
			DoubleCharAlphabet:    int(meta.alphabet),
			ForceBinarySearchDict: meta.forceBS,
		}, entries)
		if err != nil {
			return nil, fmt.Errorf("hope: reassemble dictionary: %w", err)
		}
		rest = rest[1:]
	}

	switch meta.storeKind {
	case kindIndex:
		return restoreIndex(backend, meta, enc, rest)
	case kindSharded:
		return restoreSharded(backend, meta, enc, rest)
	case kindAdaptive:
		return restoreAdaptive(backend, meta, enc, rest, c)
	}
	return nil, fmt.Errorf("%w: unknown store kind %d", ErrSnapshotCorrupt, meta.storeKind)
}

// runSections validates that sections holds exactly the expected run
// sections of the given kind, indexed by shard.
func runSections(sections []snapshot.Section, kind uint8, shards int) ([][]byte, error) {
	payloads := make([][]byte, shards)
	seen := 0
	for _, s := range sections {
		if s.Kind != kind {
			return nil, fmt.Errorf("%w: unexpected section kind %d", ErrSnapshotCorrupt, s.Kind)
		}
		if s.Shard < 0 || s.Shard >= shards || payloads[s.Shard] != nil {
			return nil, fmt.Errorf("%w: bad or duplicate run shard %d", ErrSnapshotCorrupt, s.Shard)
		}
		payloads[s.Shard] = s.Payload
		seen++
	}
	if seen != shards {
		return nil, fmt.Errorf("%w: %d run sections for %d shards", ErrSnapshotCorrupt, seen, shards)
	}
	return payloads, nil
}

func restoreIndex(backend Backend, meta snapMeta, enc *core.Encoder, sections []snapshot.Section) (*Index, error) {
	payloads, err := runSections(sections, secRun, 1)
	if err != nil {
		return nil, err
	}
	x, err := NewIndex(backend, enc)
	if err != nil {
		return nil, err
	}
	x.maxKeyLen = int(meta.maxKeyLen)
	keys, vals, err := decodeRun(payloads[0])
	if err != nil {
		return nil, err
	}
	if err := x.be.bulk(ownedCopies(keys), vals); err != nil {
		return nil, err
	}
	return x, nil
}

// restorePartitioner rebuilds the dumped partition layout.
func restorePartitioner(meta snapMeta) Partitioner {
	if meta.partition != 1 {
		return NewHashPartitioner(int(meta.shards))
	}
	if len(meta.splits) == 0 {
		return NewUnseededRangePartitioner(int(meta.shards))
	}
	return NewRangePartitioner(meta.splits)
}

func restoreSharded(backend Backend, meta snapMeta, enc *core.Encoder, sections []snapshot.Section) (*ShardedIndex, error) {
	payloads, err := runSections(sections, secRun, int(meta.shards))
	if err != nil {
		return nil, err
	}
	s, err := NewShardedIndexWithPartitioner(backend, enc, restorePartitioner(meta))
	if err != nil {
		return nil, err
	}
	s.maxKeyLen.Store(int64(meta.maxKeyLen))
	// Shard loads are independent: decode, copy, and bulk-insert each
	// shard's run in parallel, the restore-side mirror of Bulk's layout.
	var wg sync.WaitGroup
	errs := make([]error, len(payloads))
	for i := range payloads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys, vals, err := decodeRun(payloads[i])
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = s.shards[i].be.bulk(ownedCopies(keys), vals)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func restoreAdaptive(backend Backend, meta snapMeta, enc *core.Encoder, sections []snapshot.Section, c *openConfig) (*AdaptiveIndex, error) {
	payloads, err := runSections(sections, secARun, int(meta.shards))
	if err != nil {
		return nil, err
	}
	var opts AdaptiveOptions
	if c != nil && c.adaptive != nil {
		opts = *c.adaptive
	}
	// Structural truth comes from the snapshot: shard count, partition
	// mode, split points, and the serving dictionary override whatever the
	// caller's options say. With a compressed snapshot the index restores
	// straight into the Steady state (opts.Encoder semantics); the
	// lifecycle reservoir starts empty and refills from live traffic.
	opts.Shards = int(meta.shards)
	opts.Partition = HashPartitioned
	if meta.partition == 1 {
		opts.Partition = RangePartitioned
	}
	opts.Encoder = enc
	if enc != nil {
		opts.Scheme = enc.Scheme()
	}
	a, err := newAdaptiveIndexWithSplits(backend, opts, meta.splits)
	if err != nil {
		return nil, err
	}
	a.maxKeyLen.Store(int64(meta.maxKeyLen))
	gen := a.cur
	gen.idx.maxKeyLen.Store(int64(meta.maxKeyLen))

	// Decode every stripe, rebuild its record store in file order (slot i
	// of stripe s is record id s<<32|i), and group the stored encodings by
	// the tree shard the generation's partitioner routes each key to. For
	// hash partitions the tree shard IS the stripe and the grouped run is
	// already in encoded order; range partitions interleave stripes per
	// tree shard, which the bulk path tolerates (backends do not require
	// sorted input).
	nShards := int(meta.shards)
	treeKeys := make([][][]byte, nShards)
	treeIDs := make([][]uint64, nShards)
	for stripe := range payloads {
		origs, encs, vals, err := decodeARun(payloads[stripe], enc != nil)
		if err != nil {
			return nil, err
		}
		recs := make([]record, 0, len(origs))
		owned := ownedCopies(origs)
		var stored [][]byte
		if enc != nil {
			stored = ownedCopies(encs)
		} else {
			stored = owned
		}
		for slot := range owned {
			recs = append(recs, record{key: owned[slot], val: vals[slot]})
			w := routeRecord(gen, stripe, owned[slot])
			treeKeys[w] = append(treeKeys[w], stored[slot])
			treeIDs[w] = append(treeIDs[w], recordID(stripe, slot))
		}
		gen.recs[stripe] = generationShardRecords{recs: recs, live: len(recs)}
	}

	var wg sync.WaitGroup
	errs := make([]error, nShards)
	for w := 0; w < nShards; w++ {
		if len(treeKeys[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = gen.idx.shards[w].be.bulk(treeKeys[w], treeIDs[w])
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}
