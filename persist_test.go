package hope

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/snapshot"
)

// persistOracle is the restore differential's ground truth: the exact
// (key, value) set a store held when it was snapshotted, queried with
// plain sort + map.
type persistOracle struct {
	keys [][]byte // ascending, unique
	vals map[string]uint64
}

func newPersistOracle() *persistOracle {
	return &persistOracle{vals: map[string]uint64{}}
}

func (o *persistOracle) put(k []byte, v uint64) {
	if _, ok := o.vals[string(k)]; !ok {
		o.keys = append(o.keys, append([]byte(nil), k...))
	}
	o.vals[string(k)] = v
}

func (o *persistOracle) delete(k []byte) {
	if _, ok := o.vals[string(k)]; !ok {
		return
	}
	delete(o.vals, string(k))
	for i, key := range o.keys {
		if bytes.Equal(key, k) {
			o.keys = append(o.keys[:i], o.keys[i+1:]...)
			break
		}
	}
}

func (o *persistOracle) sorted() {
	sort.Slice(o.keys, func(i, j int) bool { return bytes.Compare(o.keys[i], o.keys[j]) < 0 })
}

// checkRestoredEquals asserts s holds exactly the oracle's contents: the
// key count, every key's value by point lookup, and the full-scan value
// sequence (values are unique, so the sequence pins the visit order even
// when the store hands back encoded keys).
func checkRestoredEquals(t *testing.T, s Store, o *persistOracle) {
	t.Helper()
	o.sorted()
	if got := s.Len(); got != len(o.keys) {
		t.Fatalf("restored Len = %d, want %d", got, len(o.keys))
	}
	for _, k := range o.keys {
		want := o.vals[string(k)]
		if v, ok := s.Get(k); !ok || v != want {
			t.Fatalf("restored get %q = (%d,%v), want (%d,true)", k, v, ok, want)
		}
	}
	var gotVals []uint64
	n := s.Scan(nil, nil, func(_ []byte, v uint64) bool {
		gotVals = append(gotVals, v)
		return true
	})
	if n != len(o.keys) {
		t.Fatalf("restored full scan visited %d keys, want %d", n, len(o.keys))
	}
	for i, k := range o.keys {
		if want := o.vals[string(k)]; gotVals[i] != want {
			t.Fatalf("restored scan val[%d] = %d, want %d (key %q)", i, gotVals[i], want, k)
		}
	}
}

// persistShapes is the store-shape axis of the round-trip matrix; check
// pins the concrete type a restore must rebuild.
func persistShapes(enc func() *core.Encoder) []struct {
	name  string
	opts  func() []Option
	check func(t *testing.T, s Store)
} {
	return []struct {
		name  string
		opts  func() []Option
		check func(t *testing.T, s Store)
	}{
		{"Index", func() []Option {
			return []Option{WithEncoder(enc())}
		}, func(t *testing.T, s Store) {
			if _, ok := s.(*Index); !ok {
				t.Fatalf("restored %T, want *Index", s)
			}
		}},
		{"Sharded/hash", func() []Option {
			return []Option{WithEncoder(enc()), WithShards(4)}
		}, func(t *testing.T, s Store) {
			sh, ok := s.(*ShardedIndex)
			if !ok {
				t.Fatalf("restored %T, want *ShardedIndex", s)
			}
			if sh.NumShards() != 4 || sh.Partitioner().Ordered() {
				t.Fatalf("restored %d shards (ordered=%v), want 4 hash shards",
					sh.NumShards(), sh.Partitioner().Ordered())
			}
		}},
		{"Sharded/range", func() []Option {
			return []Option{WithEncoder(enc()), WithShards(4), WithRangePartitioner(adversarialCorpus())}
		}, func(t *testing.T, s Store) {
			sh, ok := s.(*ShardedIndex)
			if !ok {
				t.Fatalf("restored %T, want *ShardedIndex", s)
			}
			if sh.NumShards() != 4 || !sh.Partitioner().Ordered() {
				t.Fatalf("restored %d shards (ordered=%v), want 4 range shards",
					sh.NumShards(), sh.Partitioner().Ordered())
			}
		}},
		{"Adaptive/hash", func() []Option {
			return []Option{WithAdaptive(AdaptiveOptions{Encoder: enc(), Shards: 4, Manual: true})}
		}, func(t *testing.T, s Store) {
			if _, ok := s.(*AdaptiveIndex); !ok {
				t.Fatalf("restored %T, want *AdaptiveIndex", s)
			}
		}},
		{"Adaptive/range", func() []Option {
			return []Option{WithAdaptive(AdaptiveOptions{
				Encoder: enc(), Shards: 4, Manual: true, Partition: RangePartitioned,
			})}
		}, func(t *testing.T, s Store) {
			if _, ok := s.(*AdaptiveIndex); !ok {
				t.Fatalf("restored %T, want *AdaptiveIndex", s)
			}
		}},
	}
}

// TestPersistRoundTrip is the save/restore conformance leg: every store
// shape × {uncompressed, Double-Char} × mutable backend loads the
// adversarial corpus (with deletions), snapshots, reopens from disk, and
// must match the oracle exactly — with zero re-encoding on the way back
// (the restore path has no encode call to make).
//
// The reopen passes no shape options: the snapshot's structural truth
// (kind, shards, partition, dictionary) must reconstruct the store alone.
// Adaptive shapes pass lifecycle tuning only (Manual), which the snapshot
// deliberately does not carry.
func TestPersistRoundTrip(t *testing.T) {
	encs := testEncoders(t)
	corpus := adversarialCorpus()
	configs := []struct {
		name string
		enc  *core.Encoder
	}{
		{"Uncompressed", nil},
		{"Double-Char", encs[core.DoubleChar]},
	}
	for _, backend := range []Backend{ART, BTree} {
		for _, cfg := range configs {
			cloneEnc := func() *core.Encoder {
				if cfg.enc == nil {
					return nil
				}
				return cfg.enc.Clone()
			}
			for _, shape := range persistShapes(cloneEnc) {
				adaptive := shape.name == "Adaptive/hash" || shape.name == "Adaptive/range"
				t.Run(shape.name+"/"+string(backend)+"/"+cfg.name, func(t *testing.T) {
					dir := t.TempDir()
					s := mustOpen(t, backend, append(shape.opts(), WithSnapshotDir(dir))...)
					p := s.(*Persistent)
					if p.Restored() || p.Generation() != 0 {
						t.Fatalf("fresh open: restored=%v gen=%d, want false/0", p.Restored(), p.Generation())
					}
					oracle := newPersistOracle()
					for i, k := range corpus {
						if err := s.Put(k, uint64(i)); err != nil {
							t.Fatalf("put %q: %v", k, err)
						}
						oracle.put(k, uint64(i))
					}
					for i := 0; i < len(corpus); i += 5 {
						if _, err := s.Delete(corpus[i]); err != nil {
							t.Fatalf("delete %q: %v", corpus[i], err)
						}
						oracle.delete(corpus[i])
					}
					if err := p.Snapshot(); err != nil {
						t.Fatalf("snapshot: %v", err)
					}
					if p.Generation() != 1 {
						t.Fatalf("generation after snapshot = %d, want 1", p.Generation())
					}
					if err := p.Close(); err != nil {
						t.Fatalf("close: %v", err)
					}

					reopen := []Option{WithSnapshotDir(dir)}
					if adaptive {
						reopen = append(reopen, WithAdaptive(AdaptiveOptions{Manual: true}))
					}
					r := mustOpen(t, backend, reopen...)
					rp := r.(*Persistent)
					defer rp.Close()
					if !rp.Restored() || rp.Generation() != 1 {
						t.Fatalf("reopen: restored=%v gen=%d, want true/1", rp.Restored(), rp.Generation())
					}
					shape.check(t, rp.Unwrap())
					checkRestoredEquals(t, rp, oracle)

					// The restored store serves writes: a snapshot restores a
					// live index, not a frozen image.
					if err := r.Put([]byte("post-restore-key"), 424242); err != nil {
						t.Fatalf("put after restore: %v", err)
					}
					if v, ok := r.Get([]byte("post-restore-key")); !ok || v != 424242 {
						t.Fatalf("get after restore-write = (%d,%v), want (424242,true)", v, ok)
					}
				})
			}
		}
	}
}

// TestPersistRoundTripSuRF covers the bulk-only backend: a snapshotted
// SuRF run restores through the same bulk path that built it.
func TestPersistRoundTripSuRF(t *testing.T) {
	encs := testEncoders(t)
	for _, cfg := range []struct {
		name string
		enc  *core.Encoder
	}{
		{"Uncompressed", nil},
		{"Double-Char", encs[core.DoubleChar]},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			enc := cfg.enc
			if enc != nil {
				enc = enc.Clone()
			}
			dir := t.TempDir()
			corpus := adversarialCorpus()
			s := mustOpen(t, SuRF, WithEncoder(enc), WithSnapshotDir(dir))
			oracle := newPersistOracle()
			if err := s.Bulk(corpus, nil); err != nil {
				t.Fatalf("bulk: %v", err)
			}
			for i, k := range corpus {
				oracle.put(k, uint64(i))
			}
			p := s.(*Persistent)
			if err := p.Snapshot(); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			p.Close()

			r := mustOpen(t, SuRF, WithSnapshotDir(dir))
			rp := r.(*Persistent)
			defer rp.Close()
			if _, ok := rp.Unwrap().(*Index); !ok {
				t.Fatalf("restored %T, want *Index", rp.Unwrap())
			}
			checkRestoredEquals(t, rp, oracle)
		})
	}
}

// TestPersistStructuralOverride pins restore precedence: the snapshot's
// shape wins over the caller's shape options on reopen.
func TestPersistStructuralOverride(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, BTree, WithShards(4), WithSnapshotDir(dir))
	if err := s.Put([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.(*Persistent).Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Caller asks for 16 shards; the snapshot says 4.
	r := mustOpen(t, BTree, WithShards(16), WithSnapshotDir(dir))
	defer r.Close()
	sh, ok := r.(*Persistent).Unwrap().(*ShardedIndex)
	if !ok {
		t.Fatalf("restored %T, want *ShardedIndex", r.(*Persistent).Unwrap())
	}
	if sh.NumShards() != 4 {
		t.Fatalf("restored NumShards = %d, want the snapshot's 4", sh.NumShards())
	}
}

// TestPersistBackendMismatch: a snapshot is not a migration tool — Open
// with a different backend refuses rather than silently rebuilding.
func TestPersistBackendMismatch(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, BTree, WithSnapshotDir(dir))
	if err := s.Put([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.(*Persistent).Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if _, err := Open(ART, WithSnapshotDir(dir)); err == nil {
		t.Fatal("Open(ART) over a B+tree snapshot succeeded, want backend-mismatch error")
	}
}

// TestPersistSnapshotAfterClose: a closed Persistent refuses Snapshot
// with the store-wide ErrClosed.
func TestPersistSnapshotAfterClose(t *testing.T) {
	s := mustOpen(t, BTree, WithSnapshotDir(t.TempDir()))
	p := s.(*Persistent)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Snapshot after Close: err = %v, want ErrClosed", err)
	}
}

// TestPersistRetain: Prune keeps the configured number of generations.
func TestPersistRetain(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, BTree, WithSnapshotDir(dir), WithSnapshotRetain(2))
	p := s.(*Persistent)
	defer p.Close()
	for i := 0; i < 5; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
		if err := p.Snapshot(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	d := snapshot.Dir{FS: snapshot.OS(), Path: dir}
	gens, err := d.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("generations on disk = %v, want [4 5]", gens)
	}
}

// TestPersistFallbackToPreviousGeneration: a torn newest generation (the
// crash-mid-write shape) silently falls back to the one before it.
func TestPersistFallbackToPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, BTree, WithShards(2), WithSnapshotDir(dir))
	p := s.(*Persistent)
	oracle := newPersistOracle()
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("key-%02d", i))
		if err := s.Put(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
		oracle.put(k, uint64(i))
	}
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Generation 2 holds extra keys the oracle does not.
	if err := s.Put([]byte("only-in-gen-2"), 999); err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	// Tear generation 2: drop its tail, as a crash mid-write would.
	gen2 := filepath.Join(dir, "snap-0000000000000002.hope")
	data, err := os.ReadFile(gen2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gen2, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, BTree, WithSnapshotDir(dir))
	rp := r.(*Persistent)
	defer rp.Close()
	if rp.Generation() != 1 {
		t.Fatalf("restored generation = %d, want fallback to 1", rp.Generation())
	}
	checkRestoredEquals(t, rp, oracle)
}

// TestPersistAllGenerationsBad: when every generation on disk is torn or
// corrupt, Open fails with the typed error — it never serves a partial or
// empty index over a directory that claims to hold one.
func TestPersistAllGenerationsBad(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, BTree, WithSnapshotDir(dir))
	if err := s.Put([]byte("k"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.(*Persistent).Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	gen1 := filepath.Join(dir, "snap-0000000000000001.hope")
	data, err := os.ReadFile(gen1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gen1, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(BTree, WithSnapshotDir(dir))
	if err == nil {
		t.Fatal("Open over an all-torn directory succeeded")
	}
	if !errors.Is(err, ErrSnapshotTorn) && !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("err = %v, want ErrSnapshotTorn or ErrSnapshotCorrupt", err)
	}
}

// crashPoints is the write-path half of the snapshot kill matrix — every
// checkpoint a commit crosses (PointOpen/PointRead only fire on restore
// and get their own test below).
var crashPoints = []string{
	snapshot.PointCreate, snapshot.PointWrite, snapshot.PointSync,
	snapshot.PointClose, snapshot.PointRename, snapshot.PointRemove,
	snapshot.PointDirSync,
}

// TestPersistCrashMatrix kills a snapshot commit at every filesystem
// checkpoint × several hit depths, then reopens from disk with a clean
// filesystem. The invariant under test is all-or-nothing durability: the
// restored store must equal exactly the pre-mutation image (generation 1
// survived) or exactly the post-mutation image (generation 2 landed
// despite the late fault) — never a partial blend, never an error, since
// a valid generation always exists on disk.
func TestPersistCrashMatrix(t *testing.T) {
	encs := testEncoders(t)
	corpus := adversarialCorpus()
	base, extra := corpus[:len(corpus)/2], corpus[len(corpus)/2:]
	for _, point := range crashPoints {
		for _, nth := range []int{1, 2, 40} {
			t.Run(fmt.Sprintf("%s/hit-%d", point, nth), func(t *testing.T) {
				dir := t.TempDir()
				var armed atomic.Bool
				var hits atomic.Int64
				inj := fault.Func(func(p string, shard int) error {
					if !armed.Load() || p != point {
						return nil
					}
					if hits.Add(1) == int64(nth) {
						return fmt.Errorf("injected crash at %s hit %d", p, nth)
					}
					return nil
				})
				s := mustOpen(t, BTree,
					WithEncoder(encs[core.DoubleChar].Clone()), WithShards(4),
					WithSnapshotDir(dir),
					WithSnapshotFS(snapshot.Faulty(snapshot.OS(), inj)))
				p := s.(*Persistent)

				oracle1 := newPersistOracle()
				for i, k := range base {
					if err := s.Put(k, uint64(i)); err != nil {
						t.Fatal(err)
					}
					oracle1.put(k, uint64(i))
				}
				if err := p.Snapshot(); err != nil {
					t.Fatalf("clean generation-1 snapshot: %v", err)
				}

				oracle2 := newPersistOracle()
				for _, k := range oracle1.keys {
					oracle2.put(k, oracle1.vals[string(k)])
				}
				for i, k := range extra {
					if err := s.Put(k, uint64(1000+i)); err != nil {
						t.Fatal(err)
					}
					oracle2.put(k, uint64(1000+i))
				}

				armed.Store(true)
				snapErr := p.Snapshot()
				armed.Store(false)
				fired := hits.Load() >= int64(nth)
				if fired && point != snapshot.PointRemove && snapErr == nil {
					t.Fatalf("fault fired at %s but Snapshot returned nil", point)
				}
				p.Close()

				r, err := Open(BTree, WithSnapshotDir(dir))
				if err != nil {
					t.Fatalf("reopen after crash at %s (snapshot err: %v): %v", point, snapErr, err)
				}
				rp := r.(*Persistent)
				defer rp.Close()
				switch rp.Generation() {
				case 1:
					checkRestoredEquals(t, rp, oracle1)
				case 2:
					checkRestoredEquals(t, rp, oracle2)
				default:
					t.Fatalf("restored generation %d, want 1 or 2", rp.Generation())
				}
			})
		}
	}
}

// TestPersistRestoreReadFaults fires the read-path checkpoints during
// Open: a restore that cannot read its file must fail cleanly (or fall
// back), never serve a partially loaded index.
func TestPersistRestoreReadFaults(t *testing.T) {
	for _, point := range []string{snapshot.PointOpen, snapshot.PointRead} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, BTree, WithSnapshotDir(dir))
			for i := 0; i < 10; i++ {
				if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), uint64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.(*Persistent).Snapshot(); err != nil {
				t.Fatal(err)
			}
			s.Close()

			inj := fault.NewPlan(1, fault.Rule{Point: point, Shard: -1, Kind: fault.Error, Nth: 1})
			_, err := Open(BTree, WithSnapshotDir(dir),
				WithSnapshotFS(snapshot.Faulty(snapshot.OS(), inj)))
			if err == nil {
				t.Fatalf("Open with %s fault on the only generation succeeded", point)
			}
		})
	}
}

// TestPersistSnapshotUnderLoad snapshots an adaptive store while writers
// hammer it. The snapshot must commit and restore to a consistent image;
// exact contents are unknowable mid-stream, so after the writers join a
// final snapshot is taken and that one must match the live store exactly.
func TestPersistSnapshotUnderLoad(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, BTree,
		WithAdaptive(AdaptiveOptions{Shards: 4, Manual: true}),
		WithSnapshotDir(dir))
	p := s.(*Persistent)

	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%d-key-%04d", w, i))
				if err := s.Put(k, uint64(w*perWriter+i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if i%7 == 0 {
					if _, err := s.Delete(k); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// Mid-flight snapshots: each must commit a valid generation.
	for i := 0; i < 3; i++ {
		if err := p.Snapshot(); err != nil {
			t.Fatalf("snapshot under load: %v", err)
		}
	}
	wg.Wait()

	oracle := newPersistOracle()
	s.Scan(nil, nil, func(k []byte, v uint64) bool {
		oracle.put(k, v)
		return true
	})
	if err := p.Snapshot(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	p.Close()

	r := mustOpen(t, BTree,
		WithAdaptive(AdaptiveOptions{Manual: true}), WithSnapshotDir(dir))
	rp := r.(*Persistent)
	defer rp.Close()
	checkRestoredEquals(t, rp, oracle)
}
