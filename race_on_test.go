//go:build race

package hope

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops a fraction of puts to diversify schedules,
// so steady-state zero-allocation assertions over pooled scratch do not
// hold and are skipped (the benchmarks still report allocs/op).
const raceEnabled = true
