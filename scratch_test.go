package hope

import (
	"testing"

	"repro/internal/core"
)

// TestPointOpScratchNotRetained locks the facade's most fragile contract:
// Index.Get and Index.Delete hand the backends a *reusable* scratch buffer
// (encodePoint's), so no backend may retain it — not in a node, not in a
// rebuilt prefix, not in a separator. The test drives Get/Delete across
// every backend × scheme and violently clobbers the scratch buffer after
// every single call; if any backend aliased the buffer into its structure,
// the subsequent full verification against the model map (and a full scan)
// fails.
//
// The audit backing this test: ART rebuilds collapsed prefixes from stored
// node/leaf bytes (art.actualPrefix + setPrefix copies), HOT rebuilds
// mini-tries from stored leaves, B+tree deletion moves only stored keys,
// the prefix B+tree re-derives separators via fullKey/shortestSep from
// stored suffixes, and SuRF's run is immutable — none touch the probe
// buffer beyond the call. This test keeps that true as the trees evolve.
func TestPointOpScratchNotRetained(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	clobber := func(x *Index) {
		// The scratch lives in x.buf between point ops (same package:
		// reach in directly). Overwrite every byte of its capacity.
		b := x.buf[:cap(x.buf)]
		for i := range b {
			b[i] = 0xA5
		}
	}
	for _, backend := range Backends {
		for _, scheme := range testSchemes {
			enc := encs[scheme]
			x := loadIndex(t, backend, enc.Clone(), keys)
			model := map[string]uint64{}
			for i, k := range keys {
				model[string(k)] = uint64(i)
			}
			// Interleave Gets (all backends) and Deletes (mutable ones)
			// with scratch clobbering after every call.
			mutable := backend != SuRF
			for i, k := range keys {
				if _, ok := x.Get(k); !ok {
					t.Fatalf("%s/%v: Get(%q) lost before clobbering", backend, scheme, k)
				}
				clobber(x)
				if mutable && i%3 == 0 {
					ok, err := x.Delete(k)
					if err != nil || !ok {
						t.Fatalf("%s/%v: Delete(%q) = %v, %v", backend, scheme, k, ok, err)
					}
					delete(model, string(k))
					clobber(x)
				}
			}
			// Full verification: every surviving key must still be intact
			// and every deleted key absent.
			for _, k := range keys {
				wantV, wantOK := model[string(k)]
				gotV, gotOK := x.Get(k)
				clobber(x)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					t.Fatalf("%s/%v: Get(%q) = %d,%v want %d,%v — backend retained the scratch buffer?",
						backend, scheme, k, gotV, gotOK, wantV, wantOK)
				}
			}
			// And the stored keys themselves must be uncorrupted: a full
			// scan returns exactly the model's vals.
			got := map[uint64]bool{}
			n := x.Scan(nil, nil, func(_ []byte, v uint64) bool {
				got[v] = true
				return true
			})
			if n != len(model) || len(got) != len(model) {
				t.Fatalf("%s/%v: scan found %d keys (%d distinct vals), want %d",
					backend, scheme, n, len(got), len(model))
			}
			for _, v := range model {
				if !got[v] {
					t.Fatalf("%s/%v: val %d missing from scan after clobbering", backend, scheme, v)
				}
			}
		}
	}
}

// TestShardedScratchNotRetained extends the contract to the pooled
// read-path scratch of ShardedIndex: a Get's encode buffer returns to the
// pool and is immediately reused (and rewritten) by the next operation, so
// retention by a backend would corrupt lookups under interleaving. The
// single-threaded interleave below reuses the same pooled buffer for
// every op, which is the tightest aliasing pressure the pool can produce.
func TestShardedScratchNotRetained(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	for _, backend := range []Backend{ART, HOT, BTree, PrefixBTree} {
		s, err := NewShardedIndex(backend, encs[core.ThreeGrams], 4)
		if err != nil {
			t.Fatal(err)
		}
		model := map[string]uint64{}
		for i, k := range keys {
			if err := s.Put(k, uint64(i)); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = uint64(i)
			// Reuse the pooled scratch immediately with a different key:
			// if Put's tree retained a probe buffer, this would smash it.
			s.Get(keys[(i*7)%len(keys)])
		}
		for i, k := range keys {
			if i%4 == 0 {
				if _, err := s.Delete(k); err != nil {
					t.Fatal(err)
				}
				delete(model, string(k))
				s.Get(keys[(i*5)%len(keys)])
			}
		}
		for _, k := range keys {
			wantV, wantOK := model[string(k)]
			gotV, gotOK := s.Get(k)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("%s: Get(%q) = %d,%v want %d,%v", backend, k, gotV, gotOK, wantV, wantOK)
			}
		}
	}
}
