#!/bin/sh
# restore_smoke.sh — end-to-end crash-recovery smoke with the real
# binaries: serve a preloaded compressed store with periodic snapshots
# into a fresh directory, wait for a committed generation, SIGKILL the
# server (no drain, no final snapshot), restart it against the same
# directory with NO preload and NO scheme flags — the snapshot alone must
# reconstruct the dictionary, partitioning and keys — then require the
# restored key count to equal the pre-kill count and the /metrics restore
# series to be live. Finishes with a SIGTERM drain that must commit a
# further generation and exit 0. Used by `make restore-smoke` and the CI
# restore-smoke leg.
set -eu

ADDR=${ADDR:-127.0.0.1:7970}
DEBUG_ADDR=${DEBUG_ADDR:-127.0.0.1:7990}
KEYS=${KEYS:-20000}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
snapdir="$tmpdir/snap"

go build -o "$tmpdir/hopeserve" ./cmd/hopeserve
go build -o "$tmpdir/hopeload" ./cmd/hopeload

# probe <addr> — read-only readiness check (no sets: the keyspace must
# stay exactly the preload so pre-kill and post-restore counts compare).
probe() {
    "$tmpdir/hopeload" -addr "$1" -conns 1 -qps 100 -duration 100ms \
        -warmup 0s -keys 100 -dataset email -seed 42 -set 0 -range 0 \
        >/dev/null 2>&1
}

wait_ready() {
    i=0
    while ! probe "$1"; do
        i=$((i+1))
        if [ "$i" -ge 50 ]; then
            echo "restore_smoke: server on $1 never became ready" >&2
            return 1
        fi
        sleep 0.1
    done
}

# scrape <name> — one series value from the current /metrics.
scrape() {
    awk -v s="$1" '$1 == s { print $2 }' "$tmpdir/metrics.txt"
}

"$tmpdir/hopeserve" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" \
    -store sharded -scheme Double-Char \
    -preload "$KEYS" -dataset email -seed 42 \
    -snapshot-dir "$snapdir" -snapshot-every 300ms &
SERVE_PID=$!
wait_ready "$ADDR" || { kill "$SERVE_PID" 2>/dev/null || true; exit 1; }

# Wait for the first periodic snapshot to commit (a committed generation
# is a rename-published snap-*.hope; the temp file never counts).
i=0
while ! ls "$snapdir"/snap-*.hope >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -ge 100 ]; then
        echo "restore_smoke: no snapshot committed within 10s" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done

"$tmpdir/hopeload" -metrics "http://$DEBUG_ADDR/metrics" -dump-metrics \
    > "$tmpdir/metrics.txt"
len_before=$(scrape hope_index_len)
if [ -z "$len_before" ] || [ "$len_before" = "0" ]; then
    echo "restore_smoke: bad pre-kill key count '$len_before'" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi

# The crash: SIGKILL, no drain, no final snapshot. Recovery must come
# from the last committed generation alone.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true

"$tmpdir/hopeserve" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" \
    -store sharded -snapshot-dir "$snapdir" &
SERVE_PID=$!
wait_ready "$ADDR" || { kill "$SERVE_PID" 2>/dev/null || true; exit 1; }

"$tmpdir/hopeload" -metrics "http://$DEBUG_ADDR/metrics" -dump-metrics \
    > "$tmpdir/metrics.txt"
len_after=$(scrape hope_index_len)
restored=$(scrape hope_snapshot_restored)
gen=$(scrape hope_snapshot_generation)
restores=$(scrape hope_restore_total)

fail=""
[ "$len_after" = "$len_before" ] || fail="key count $len_after != pre-kill $len_before"
[ "$restored" = "1" ] || fail="${fail:+$fail; }hope_snapshot_restored=$restored, want 1"
case "${gen:-0}" in 0|0.0|'') fail="${fail:+$fail; }hope_snapshot_generation missing or zero";; esac
case "${restores:-0}" in 0|0.0|'') fail="${fail:+$fail; }hope_restore_total missing or zero";; esac
if [ -n "$fail" ]; then
    echo "restore_smoke: $fail" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi

# Graceful drain commits a further generation and exits 0.
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
    echo "restore_smoke: restored server did not drain cleanly" >&2
    exit 1
fi
gens=$(ls "$snapdir"/snap-*.hope | wc -l)
if [ "$gens" -lt 1 ]; then
    echo "restore_smoke: drain left no committed snapshot" >&2
    exit 1
fi
echo "restore_smoke: OK (SIGKILL at gen $gen, restored $len_after/$len_before keys, live restore metrics, clean drain)"
