#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the network serving layer with the
# real binaries: build hopeserve + hopeload, serve a preloaded compressed
# store with the HTTP debug listener up, drive an open-loop load at
# >=10k target QPS while scraping /metrics mid-load (fails on missing or
# zero core series), then SIGTERM the server and require a clean drain
# (exit 0). hopeload exits non-zero on any protocol error or dead
# connection, so "the load ran" also means "zero errors". Used by
# `make serve-smoke` and the CI serve-smoke leg.
set -eu

ADDR=${ADDR:-127.0.0.1:7979}
DEBUG_ADDR=${DEBUG_ADDR:-127.0.0.1:7989}
KEYS=${KEYS:-50000}
QPS=${QPS:-12000}
DURATION=${DURATION:-3s}
WARMUP=${WARMUP:-1s}

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

go build -o "$tmpdir/hopeserve" ./cmd/hopeserve
go build -o "$tmpdir/hopeload" ./cmd/hopeload

"$tmpdir/hopeserve" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" \
    -store sharded -scheme Double-Char \
    -preload "$KEYS" -dataset email -seed 42 &
SERVE_PID=$!

# hopeload's dial is not retried, so wait for the listener ourselves.
i=0
while ! "$tmpdir/hopeload" -addr "$ADDR" -conns 1 -qps 100 -duration 100ms \
        -warmup 0s -keys 100 -dataset email -seed 42 >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -ge 50 ]; then
        echo "serve_smoke: server never became ready" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done

# Main load runs in the background so /metrics is scraped under live
# traffic, not after it.
"$tmpdir/hopeload" -addr "$ADDR" -conns 4 -qps "$QPS" -duration "$DURATION" \
    -warmup "$WARMUP" -keys "$KEYS" -dataset email -seed 42 -set 0.05 -range 0.02 &
LOAD_PID=$!

# Scrape mid-load (past the warmup) and assert the core series exist and
# are moving. hopeload doubles as the scraper, so the check needs no curl.
sleep 2
"$tmpdir/hopeload" -metrics "http://$DEBUG_ADDR/metrics" -dump-metrics \
    > "$tmpdir/metrics.txt"
for series in hope_server_get_total hope_server_set_total \
        hope_index_get_total hope_index_len; do
    val=$(awk -v s="$series" '$1 == s { print $2 }' "$tmpdir/metrics.txt")
    if [ -z "$val" ]; then
        echo "serve_smoke: /metrics is missing $series" >&2
        kill "$LOAD_PID" "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    case "$val" in
    0|0.0)
        echo "serve_smoke: $series is zero under live load" >&2
        kill "$LOAD_PID" "$SERVE_PID" 2>/dev/null || true
        exit 1
        ;;
    esac
done

if ! wait "$LOAD_PID"; then
    echo "serve_smoke: load run failed" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi

# Graceful drain: SIGTERM must produce exit 0 within the server's grace.
kill -TERM "$SERVE_PID"
if wait "$SERVE_PID"; then
    echo "serve_smoke: OK (>=${QPS} target QPS, zero errors, live /metrics, clean drain)"
else
    echo "serve_smoke: server did not drain cleanly" >&2
    exit 1
fi
