package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"
)

// Client is a synchronous connection to a hopeserve instance: one request,
// one reply. It is what the smoke tests and examples use; the open-loop
// load generator in internal/bench pipelines raw Append*/ReadReply calls
// instead.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	buf  []byte
}

// Dial connects to a hopeserve at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialRetry dials addr, retrying until the deadline — the readiness
// handshake load tools use while the server is still binding.
func DialRetry(addr string, timeout time.Duration) (*Client, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("server: dial %s: gave up after %v: %w", addr, timeout, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		r:    bufio.NewReaderSize(conn, connBufSize),
		w:    bufio.NewWriterSize(conn, connBufSize),
	}
}

func (c *Client) roundTrip() (Reply, error) {
	if err := c.w.Flush(); err != nil {
		return Reply{}, err
	}
	rep, err := ReadReply(c.r)
	if err != nil {
		return Reply{}, err
	}
	if rep.Kind == ReplyErr {
		return rep, fmt.Errorf("server: %s", rep.Msg)
	}
	return rep, nil
}

// Set stores key=val.
func (c *Client) Set(key []byte, val uint64) error {
	c.buf = AppendSet(c.buf[:0], key, val)
	c.w.Write(c.buf)
	rep, err := c.roundTrip()
	if err != nil {
		return err
	}
	if rep.Kind != ReplyStored {
		return fmt.Errorf("server: unexpected set reply kind %d", rep.Kind)
	}
	return nil
}

// Get fetches key's value.
func (c *Client) Get(key []byte) (uint64, bool, error) {
	c.buf = AppendGet(c.buf[:0], key)
	c.w.Write(c.buf)
	rep, err := c.roundTrip()
	if err != nil {
		return 0, false, err
	}
	switch rep.Kind {
	case ReplyVal:
		return rep.Val, true, nil
	case ReplyNF:
		return 0, false, nil
	}
	return 0, false, fmt.Errorf("server: unexpected get reply kind %d", rep.Kind)
}

// Delete removes key, reporting whether it was present.
func (c *Client) Delete(key []byte) (bool, error) {
	c.buf = AppendDel(c.buf[:0], key)
	c.w.Write(c.buf)
	rep, err := c.roundTrip()
	if err != nil {
		return false, err
	}
	switch rep.Kind {
	case ReplyDel:
		return true, nil
	case ReplyNF:
		return false, nil
	}
	return false, fmt.Errorf("server: unexpected del reply kind %d", rep.Kind)
}

// Range streams [lo, hi) (nil = unbounded) up to limit results into fn,
// returning how many arrived. Keys reach fn in the store's stored form
// (decoded from the wire's hex), valid only during the callback.
func (c *Client) Range(lo, hi []byte, limit int, fn func(key []byte, val uint64) bool) (int, error) {
	c.buf = AppendRange(c.buf[:0], lo, hi, limit)
	c.w.Write(c.buf)
	rep, err := c.roundTrip()
	if err != nil {
		return 0, err
	}
	for i, line := range rep.Lines {
		key, val, err := ParseRangeLine(line)
		if err != nil {
			return i, err
		}
		if fn != nil && !fn(key, val) {
			return i + 1, nil
		}
	}
	return len(rep.Lines), nil
}

// Stats fetches the server's counters as a name → value map.
func (c *Client) Stats() (map[string]string, error) {
	c.w.WriteString("stats\n")
	rep, err := c.roundTrip()
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(rep.Lines))
	for _, line := range rep.Lines {
		rest, ok := strings.CutPrefix(line, "STAT ")
		if !ok {
			return nil, fmt.Errorf("server: malformed stat line %q", line)
		}
		name, value, ok := strings.Cut(rest, " ")
		if !ok {
			return nil, fmt.Errorf("server: malformed stat line %q", line)
		}
		out[name] = value
	}
	return out, nil
}

// Close sends quit and tears the connection down.
func (c *Client) Close() error {
	c.w.WriteString("quit\n")
	c.w.Flush()
	return c.conn.Close()
}
