// Package server is the network serving layer: a TCP server (hopeserve)
// exposing any hope.Store behind a compact memcached-style text protocol,
// and a synchronous client for it. The wire protocol is line-oriented —
// one request per line, space-separated tokens, terminated by '\n'
// (a preceding '\r' is tolerated):
//
//	set <key> <val>        -> STORED
//	get <key>              -> VAL <val> | NF
//	del <key>              -> DEL | NF
//	range <lo> <hi> <lim>  -> zero or more "K <hexkey> <val>" lines, then END
//	stats                  -> "STAT <name> <value>" lines, then END
//	quit                   -> server closes the connection
//
// Any failure is a single "ERR <reason>" line; the connection stays usable
// after an ERR (only oversized lines are fatal). Keys on the wire are raw
// byte tokens and therefore cannot contain space, CR, LF, or NUL, and
// cannot be empty — the Store API itself has no such limits, the transport
// does. In range replies keys are hex-encoded because the Store contract
// surfaces keys in their stored form, which for a compressed store is the
// encoded (arbitrary-byte) form, not the original key. Either range bound
// may be "-" for unbounded.
//
// Requests may be pipelined: the server parses every complete line in its
// read buffer before flushing replies, so a client that writes N requests
// in one burst gets N replies in (at most) one round trip.
package server

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Wire limits. A line holds at most a range request: 3 keys' worth of
// tokens plus slack, so MaxLineLen tracks MaxKeyLen.
const (
	MaxKeyLen     = 4096             // longest key token accepted on the wire
	MaxLineLen    = 3*MaxKeyLen + 64 // request lines longer than this are fatal
	MaxRangeLimit = 10000            // largest per-request range limit
)

// Reply kinds, as classified by ReadReply.
type ReplyKind uint8

const (
	ReplyStored ReplyKind = iota // set acknowledged
	ReplyVal                     // get hit; Val holds the value
	ReplyNF                      // get/del miss
	ReplyDel                     // del hit
	ReplyEnd                     // range/stats terminator; Lines holds the body
	ReplyErr                     // server error; Msg holds the reason
)

// Reply is one parsed server reply. For multi-line replies (range, stats)
// Lines holds the body lines ("K <hexkey> <val>" or "STAT <name> <value>")
// without the trailing END.
type Reply struct {
	Kind  ReplyKind
	Val   uint64
	Msg   string
	Lines []string
}

// ValidKey reports whether key can travel as a wire token: non-empty, at
// most MaxKeyLen bytes, and free of the token/line delimiters.
func ValidKey(key []byte) bool {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return false
	}
	return bytes.IndexAny(key, " \r\n\x00") < 0
}

// AppendSet appends the wire form of a set request to buf. The caller is
// responsible for key validity (ValidKey); the load client validates its
// keyspace once, not per op.
func AppendSet(buf, key []byte, val uint64) []byte {
	buf = append(buf, "set "...)
	buf = append(buf, key...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, val, 10)
	return append(buf, '\n')
}

// AppendGet appends the wire form of a get request to buf.
func AppendGet(buf, key []byte) []byte {
	buf = append(buf, "get "...)
	buf = append(buf, key...)
	return append(buf, '\n')
}

// AppendDel appends the wire form of a del request to buf.
func AppendDel(buf, key []byte) []byte {
	buf = append(buf, "del "...)
	buf = append(buf, key...)
	return append(buf, '\n')
}

// AppendRange appends the wire form of a range request to buf. Nil or
// empty bounds travel as "-" (unbounded).
func AppendRange(buf, lo, hi []byte, limit int) []byte {
	buf = append(buf, "range "...)
	buf = appendBound(buf, lo)
	buf = append(buf, ' ')
	buf = appendBound(buf, hi)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(limit), 10)
	return append(buf, '\n')
}

func appendBound(buf, b []byte) []byte {
	if len(b) == 0 {
		return append(buf, '-')
	}
	return append(buf, b...)
}

// ReadReply reads and classifies exactly one reply from r. It needs no
// knowledge of the request that produced it: single-line replies are
// recognized by their first token, and K/STAT bodies are consumed through
// their END terminator — which is what lets a pipelined receiver drain
// replies generically. A ReplyErr is returned as a value, not an error;
// the error return is for transport or framing failures only.
func ReadReply(r *bufio.Reader) (Reply, error) {
	line, err := readLine(r)
	if err != nil {
		return Reply{}, err
	}
	switch {
	case string(line) == "STORED":
		return Reply{Kind: ReplyStored}, nil
	case string(line) == "NF":
		return Reply{Kind: ReplyNF}, nil
	case string(line) == "DEL":
		return Reply{Kind: ReplyDel}, nil
	case string(line) == "END":
		return Reply{Kind: ReplyEnd}, nil
	case bytes.HasPrefix(line, []byte("VAL ")):
		v, perr := strconv.ParseUint(string(line[4:]), 10, 64)
		if perr != nil {
			return Reply{}, fmt.Errorf("server: malformed VAL reply %q", line)
		}
		return Reply{Kind: ReplyVal, Val: v}, nil
	case bytes.HasPrefix(line, []byte("ERR ")):
		return Reply{Kind: ReplyErr, Msg: string(line[4:])}, nil
	case bytes.HasPrefix(line, []byte("K ")), bytes.HasPrefix(line, []byte("STAT ")):
		rep := Reply{Kind: ReplyEnd, Lines: []string{string(line)}}
		for {
			line, err = readLine(r)
			if err != nil {
				return Reply{}, err
			}
			if string(line) == "END" {
				return rep, nil
			}
			rep.Lines = append(rep.Lines, string(line))
		}
	}
	return Reply{}, fmt.Errorf("server: unrecognized reply %q", line)
}

// readLine reads one '\n'-terminated line, stripping the terminator and an
// optional '\r'. The returned slice aliases the reader's buffer and is
// valid only until the next read.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, fmt.Errorf("server: reply line exceeds %d bytes", r.Size())
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// ParseRangeLine decodes one "K <hexkey> <val>" body line from a range
// reply into the stored-form key and its value.
func ParseRangeLine(line string) (key []byte, val uint64, err error) {
	rest, ok := strings.CutPrefix(line, "K ")
	if !ok {
		return nil, 0, fmt.Errorf("server: malformed range line %q", line)
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, 0, fmt.Errorf("server: malformed range line %q", line)
	}
	key, err = hex.DecodeString(rest[:sp])
	if err != nil {
		return nil, 0, fmt.Errorf("server: malformed range key in %q: %v", line, err)
	}
	val, err = strconv.ParseUint(rest[sp+1:], 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("server: malformed range value in %q: %v", line, err)
	}
	return key, val, nil
}
