package server

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestAppendRequestWireForms(t *testing.T) {
	cases := []struct {
		got  []byte
		want string
	}{
		{AppendSet(nil, []byte("k1"), 42), "set k1 42\n"},
		{AppendGet(nil, []byte("k1")), "get k1\n"},
		{AppendDel(nil, []byte("k1")), "del k1\n"},
		{AppendRange(nil, []byte("a"), []byte("b"), 10), "range a b 10\n"},
		{AppendRange(nil, nil, nil, 5), "range - - 5\n"},
		{AppendRange(nil, []byte("lo"), nil, 1), "range lo - 1\n"},
	}
	for _, c := range cases {
		if string(c.got) != c.want {
			t.Errorf("wire form = %q, want %q", c.got, c.want)
		}
	}
}

func TestReadReplyKinds(t *testing.T) {
	input := "STORED\n" +
		"VAL 1234\n" +
		"NF\n" +
		"DEL\n" +
		"END\n" + // empty range
		"K 6170706c65 3\nEND\n" +
		"STAT cmd_get 7\nSTAT store_len 9\nEND\n" +
		"ERR bad things\n"
	r := bufio.NewReader(strings.NewReader(input))

	rep, err := ReadReply(r)
	if err != nil || rep.Kind != ReplyStored {
		t.Fatalf("STORED: (%+v,%v)", rep, err)
	}
	rep, err = ReadReply(r)
	if err != nil || rep.Kind != ReplyVal || rep.Val != 1234 {
		t.Fatalf("VAL: (%+v,%v)", rep, err)
	}
	rep, err = ReadReply(r)
	if err != nil || rep.Kind != ReplyNF {
		t.Fatalf("NF: (%+v,%v)", rep, err)
	}
	rep, err = ReadReply(r)
	if err != nil || rep.Kind != ReplyDel {
		t.Fatalf("DEL: (%+v,%v)", rep, err)
	}
	rep, err = ReadReply(r)
	if err != nil || rep.Kind != ReplyEnd || len(rep.Lines) != 0 {
		t.Fatalf("empty END: (%+v,%v)", rep, err)
	}
	rep, err = ReadReply(r)
	if err != nil || rep.Kind != ReplyEnd || len(rep.Lines) != 1 {
		t.Fatalf("range body: (%+v,%v)", rep, err)
	}
	key, val, err := ParseRangeLine(rep.Lines[0])
	if err != nil || !bytes.Equal(key, []byte("apple")) || val != 3 {
		t.Fatalf("ParseRangeLine = (%q,%d,%v), want (apple,3,nil)", key, val, err)
	}
	rep, err = ReadReply(r)
	if err != nil || rep.Kind != ReplyEnd || len(rep.Lines) != 2 {
		t.Fatalf("stats body: (%+v,%v)", rep, err)
	}
	rep, err = ReadReply(r)
	if err != nil || rep.Kind != ReplyErr || rep.Msg != "bad things" {
		t.Fatalf("ERR: (%+v,%v)", rep, err)
	}
	if _, err = ReadReply(r); err == nil {
		t.Fatal("expected EOF after final reply")
	}
}

func TestReadReplyMalformed(t *testing.T) {
	for _, bad := range []string{"WHAT 1\n", "VAL notanum\n", "VAL\n"} {
		r := bufio.NewReader(strings.NewReader(bad))
		if _, err := ReadReply(r); err == nil {
			t.Errorf("ReadReply(%q) accepted a malformed reply", bad)
		}
	}
	for _, bad := range []string{"X no prefix", "K deadbeef", "K zz 1", "K 00 x"} {
		if _, _, err := ParseRangeLine(bad); err == nil {
			t.Errorf("ParseRangeLine(%q) accepted a malformed line", bad)
		}
	}
}

func TestValidKey(t *testing.T) {
	good := [][]byte{[]byte("a"), []byte("user@example.com"), bytes.Repeat([]byte("k"), MaxKeyLen)}
	for _, k := range good {
		if !ValidKey(k) {
			t.Errorf("ValidKey(%q) = false, want true", k)
		}
	}
	bad := [][]byte{nil, {}, []byte("has space"), []byte("nl\n"), []byte("cr\r"),
		{0x00}, bytes.Repeat([]byte("k"), MaxKeyLen+1)}
	for _, k := range bad {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true, want false", k)
		}
	}
}
