package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	hope "repro"
	"repro/internal/telemetry"
)

// Config tunes a Server. The zero value is usable: listen on an ephemeral
// localhost port with the default connection limit.
type Config struct {
	// Addr is the TCP listen address ("host:port"). Empty means
	// "127.0.0.1:0" (ephemeral port; read it back with Addr()).
	Addr string
	// MaxConns caps concurrent connections. Beyond the cap the server
	// simply stops calling Accept, so excess dials queue in the kernel
	// listen backlog — backpressure, not rejection. 0 means
	// DefaultMaxConns.
	MaxConns int
	// Logf receives connection-level diagnostics. Nil discards them.
	Logf func(format string, args ...any)
	// Registry receives the server's instruments (per-command op stats,
	// connection and error counters, store gauges) and — when the store
	// implements hope.Instrumented — the store's own metrics. Nil creates
	// a private registry, retrievable with Server.Registry().
	Registry *telemetry.Registry
	// OnDrain, when non-nil, runs during Shutdown after the store is
	// quiesced and before it is closed — the point where every
	// acknowledged write has landed and no background migration is in
	// flight. cmd/hopeserve installs the final snapshot here
	// (snapshot-on-drain); its error is reported by Shutdown but never
	// prevents the close. Must not block indefinitely.
	OnDrain func() error
}

// DefaultMaxConns is the connection cap when Config.MaxConns is zero.
const DefaultMaxConns = 256

// ErrServerClosed is returned by Serve after Shutdown begins, mirroring
// net/http's contract: it signals an orderly stop, not a failure.
var ErrServerClosed = errors.New("server: closed")

// Server serves a hope.Store over the wire protocol in this package. It
// is written against the Store interface alone — any present or future
// implementation plugs in unchanged — plus an optional Quiescer upgrade
// at shutdown.
type Server struct {
	store hope.Store
	cfg   Config

	ln       net.Listener
	sem      chan struct{} // acquired before Accept: connection backpressure
	draining atomic.Bool
	wg       sync.WaitGroup // live connection handlers

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	shutdown bool

	// connsTotal both counts accepted connections and hands each one its
	// id — the stripe hint its commands use, so connections spread their
	// counter increments across cache lines.
	connsTotal atomic.Uint64

	// Serving instruments, exposed through the stats verb and the
	// registry. Command latencies are recorded on every invocation (no
	// sampling): the wire round trip dominates, so a clock read per
	// command is noise.
	reg         *telemetry.Registry
	trace       *telemetry.EventTrace // store's lifecycle trace, nil without one
	cmdGet      *telemetry.OpStats
	cmdSet      *telemetry.OpStats
	cmdDel      *telemetry.OpStats
	cmdRange    *telemetry.OpStats
	cmdStats    *telemetry.OpStats
	getHits     telemetry.Counter
	rangeKeys   telemetry.Counter
	protoErrors telemetry.Counter
}

// New builds a Server over store. The store is borrowed until Shutdown,
// which quiesces and closes it as part of the drain.
func New(store hope.Store, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		store:    store,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxConns),
		conns:    make(map[net.Conn]struct{}),
		reg:      cfg.Registry,
		cmdGet:   telemetry.NewOpStats(1),
		cmdSet:   telemetry.NewOpStats(1),
		cmdDel:   telemetry.NewOpStats(1),
		cmdRange: telemetry.NewOpStats(1),
		cmdStats: telemetry.NewOpStats(1),
	}
	if s.reg == nil {
		s.reg = telemetry.NewRegistry()
	}
	s.registerMetrics()
	return s
}

// registerMetrics wires the server's instruments — and the store's, when
// it exposes any — into the registry. A shared registry may already hold
// some of these names (two servers over one store); collisions are
// diagnostics, not fatal.
func (s *Server) registerMetrics() {
	for _, e := range []struct {
		name string
		item any
	}{
		{"hope_server_get", s.cmdGet},
		{"hope_server_set", s.cmdSet},
		{"hope_server_del", s.cmdDel},
		{"hope_server_range", s.cmdRange},
		{"hope_server_stats", s.cmdStats},
		{"hope_server_get_hits_total", &s.getHits},
		{"hope_server_range_keys_total", &s.rangeKeys},
		{"hope_server_protocol_errors_total", &s.protoErrors},
		{"hope_server_connections_total", func() float64 { return float64(s.connsTotal.Load()) }},
		{"hope_server_connections_current", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		}},
		{"hope_server_draining", func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		}},
		{"hope_server_store_len", func() float64 { return float64(s.store.Len()) }},
	} {
		if err := s.reg.Register(e.name, e.item); err != nil {
			s.cfg.Logf("metrics: %v", err)
		}
	}
	if ins, ok := s.store.(hope.Instrumented); ok {
		if err := ins.RegisterMetrics(s.reg); err != nil {
			s.cfg.Logf("metrics: store: %v", err)
		}
	}
	if tr, ok := s.store.(hope.Traced); ok {
		s.trace = tr.Trace()
	}
}

// Registry returns the server's metrics registry (the configured one, or
// the private registry New created).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Trace returns the store's lifecycle event trace, or nil when the store
// keeps none.
func (s *Server) Trace() *telemetry.EventTrace { return s.trace }

// Listen binds the configured address. Separate from Serve so callers can
// learn the ephemeral port (Addr) before the accept loop starts.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve runs the accept loop until Shutdown closes the listener, then
// returns ErrServerClosed. The connection-limit semaphore is acquired
// *before* Accept: at the cap the server stops accepting entirely and
// excess clients wait in the listen backlog instead of being churned
// through accept-then-close.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	for {
		s.sem <- struct{}{}
		conn, err := s.ln.Accept()
		if err != nil {
			<-s.sem
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		id := s.connsTotal.Add(1)
		s.track(conn, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			defer s.track(conn, false)
			s.handle(conn, id)
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	return s.Serve()
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.conns[conn] = struct{}{}
		// A connection accepted in the window between Shutdown closing the
		// listener and its poke loop running would otherwise miss the wake
		// poke and stall the drain until the context expires.
		if s.draining.Load() {
			conn.SetReadDeadline(time.Now())
		}
	} else {
		delete(s.conns, conn)
	}
	s.mu.Unlock()
}

// Shutdown drains the server: stop accepting, let in-flight requests
// finish, then quiesce and close the store. Handlers blocked in a read
// are poked with an immediate read deadline; because bufio serves
// complete lines from its buffer without touching the socket, every
// request the client managed to pipeline before the drain still gets a
// reply before its connection closes. If ctx expires first, remaining
// connections are severed and ctx.Err is returned — but the store is
// still quiesced and closed, so acknowledged writes are never abandoned
// mid-migration.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	s.mu.Unlock()

	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		// Wake blocked readers now; handlers notice draining and finish.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
	}

	// The store drain proper: wait out background work (adaptive rebuild
	// migrations and their acknowledged writes), then close. Quiesce
	// before Close is not redundant — Close also cancels, but an explicit
	// quiesce first lets an in-flight rebuild that is nearly done land
	// instead of being torn down.
	if q, ok := s.store.(hope.Quiescer); ok {
		q.Quiesce()
	}
	// Post-quiesce, pre-close: the drain hook sees a settled store that
	// can still serve the reads a snapshot dump needs.
	if s.cfg.OnDrain != nil {
		if derr := s.cfg.OnDrain(); derr != nil {
			s.cfg.Logf("drain hook: %v", derr)
			if err == nil {
				err = derr
			}
		}
	}
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// RunUntilSignal serves until one of the given signals arrives (SIGTERM,
// typically), then drains with the given grace period. It is the main
// loop of cmd/hopeserve, kept here so it is testable.
func (s *Server) RunUntilSignal(grace time.Duration, sigs ...os.Signal) error {
	errc := make(chan error, 1)
	go func() { errc <- s.Serve() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, sigs...)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		// Accept loop died on its own — still release the store.
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		s.Shutdown(ctx)
		return err
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return err
		}
		<-errc // Serve's ErrServerClosed
		return nil
	}
}

// Connection handler buffer sizes: large enough that a deep pipeline of
// small requests is parsed (and answered) per syscall pair.
const connBufSize = 64 << 10

func (s *Server) handle(conn net.Conn, id uint64) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, connBufSize)
	w := bufio.NewWriterSize(conn, connBufSize)
	for {
		line, err := r.ReadSlice('\n')
		if err != nil {
			if err == bufio.ErrBufferFull {
				s.protoErrors.Inc(id)
				fmt.Fprintf(w, "ERR line exceeds %d bytes\n", MaxLineLen)
				w.Flush()
				return
			}
			// Read failure: a real disconnect, or the Shutdown deadline
			// poke. Either way every complete buffered line was already
			// served (bufio only hits the socket when the buffer lacks
			// one), so flushing pending replies completes the drain
			// contract for this connection.
			if !s.draining.Load() && !errors.Is(err, net.ErrClosed) && !isEOF(err) {
				s.cfg.Logf("conn %s: read: %v", conn.RemoteAddr(), err)
			}
			w.Flush()
			return
		}
		if len(line) > MaxLineLen {
			s.protoErrors.Inc(id)
			fmt.Fprintf(w, "ERR line exceeds %d bytes\n", MaxLineLen)
			w.Flush()
			return
		}
		if !s.dispatch(trimLine(line), w, id) {
			w.Flush()
			return
		}
		// Pipelining: flush only once the read buffer holds no further
		// complete request, batching replies for the whole burst.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

func trimLine(line []byte) []byte {
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// dispatch executes one request line, writing the reply into w. It
// returns false when the connection should close (quit). id is the
// connection's accept ordinal, used as the stripe hint for counters.
func (s *Server) dispatch(line []byte, w *bufio.Writer, id uint64) bool {
	cmd, rest := nextToken(line)
	switch string(cmd) {
	case "get":
		key, rest := nextToken(rest)
		if len(key) == 0 || len(rest) != 0 {
			return s.errf(w, id, "usage: get <key>")
		}
		t := s.cmdGet.Begin(id)
		if v, ok := s.store.Get(key); ok {
			s.getHits.Inc(id)
			w.WriteString("VAL ")
			w.Write(strconv.AppendUint(nil, v, 10))
			w.WriteByte('\n')
		} else {
			w.WriteString("NF\n")
		}
		s.cmdGet.End(t)
	case "set":
		key, rest := nextToken(rest)
		valTok, rest := nextToken(rest)
		if len(key) == 0 || len(valTok) == 0 || len(rest) != 0 {
			return s.errf(w, id, "usage: set <key> <val>")
		}
		v, err := strconv.ParseUint(string(valTok), 10, 64)
		if err != nil {
			return s.errf(w, id, "bad value %q", valTok)
		}
		t := s.cmdSet.Begin(id)
		if err := s.store.Put(key, v); err != nil {
			s.cmdSet.End(t)
			return s.errf(w, id, "put: %v", err)
		}
		s.cmdSet.End(t)
		w.WriteString("STORED\n")
	case "del":
		key, rest := nextToken(rest)
		if len(key) == 0 || len(rest) != 0 {
			return s.errf(w, id, "usage: del <key>")
		}
		t := s.cmdDel.Begin(id)
		ok, err := s.store.Delete(key)
		s.cmdDel.End(t)
		if err != nil {
			return s.errf(w, id, "delete: %v", err)
		}
		if ok {
			w.WriteString("DEL\n")
		} else {
			w.WriteString("NF\n")
		}
	case "range":
		loTok, rest := nextToken(rest)
		hiTok, rest := nextToken(rest)
		limTok, rest := nextToken(rest)
		if len(loTok) == 0 || len(hiTok) == 0 || len(limTok) == 0 || len(rest) != 0 {
			return s.errf(w, id, "usage: range <lo|-> <hi|-> <limit>")
		}
		limit, err := strconv.Atoi(string(limTok))
		if err != nil || limit <= 0 || limit > MaxRangeLimit {
			return s.errf(w, id, "bad limit %q (1..%d)", limTok, MaxRangeLimit)
		}
		var lo, hi []byte
		if !bytes.Equal(loTok, []byte("-")) {
			lo = loTok
		}
		if !bytes.Equal(hiTok, []byte("-")) {
			hi = hiTok
		}
		t := s.cmdRange.Begin(id)
		hexBuf := make([]byte, 0, 128)
		n := s.store.Scan(lo, hi, func(key []byte, val uint64) bool {
			hexBuf = hexBuf[:0]
			hexBuf = hexAppend(hexBuf, key)
			w.WriteString("K ")
			w.Write(hexBuf)
			w.WriteByte(' ')
			w.Write(strconv.AppendUint(nil, val, 10))
			w.WriteByte('\n')
			limit--
			return limit > 0
		})
		s.cmdRange.End(t)
		s.rangeKeys.Add(id, uint64(n))
		w.WriteString("END\n")
	case "stats":
		if len(rest) != 0 {
			return s.errf(w, id, "usage: stats")
		}
		t := s.cmdStats.Begin(id)
		s.writeStats(w)
		s.cmdStats.End(t)
	case "quit":
		return false
	default:
		return s.errf(w, id, "unknown command %q", cmd)
	}
	return true
}

// errf writes an ERR reply and keeps the connection open: protocol errors
// are per-request, not per-connection.
func (s *Server) errf(w *bufio.Writer, id uint64, format string, args ...any) bool {
	s.protoErrors.Inc(id)
	w.WriteString("ERR ")
	fmt.Fprintf(w, format, args...)
	w.WriteByte('\n')
	return true
}

// writeStats renders the stats verb: the legacy integer counters first
// (wire-compatible with earlier servers), then every registry series —
// per-command latency percentiles, lifecycle health, store gauges — as
// STAT lines, so a plain telnet client sees the same surface /metrics
// exposes.
func (s *Server) writeStats(w *bufio.Writer) {
	s.mu.Lock()
	curr := len(s.conns)
	s.mu.Unlock()
	stats := map[string]uint64{
		"curr_connections":  uint64(curr),
		"total_connections": s.connsTotal.Load(),
		"cmd_get":           s.cmdGet.Count(),
		"cmd_set":           s.cmdSet.Count(),
		"cmd_del":           s.cmdDel.Count(),
		"cmd_range":         s.cmdRange.Count(),
		"get_hits":          s.getHits.Value(),
		"range_keys":        s.rangeKeys.Value(),
		"protocol_errors":   s.protoErrors.Value(),
		"store_len":         uint64(s.store.Len()),
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "STAT %s %d\n", name, stats[name])
	}
	snap := s.reg.Snapshot()
	names = names[:0]
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w.WriteString("STAT ")
		w.WriteString(name)
		w.WriteByte(' ')
		w.Write(strconv.AppendFloat(nil, snap[name], 'g', -1, 64))
		w.WriteByte('\n')
	}
	fmt.Fprintf(w, "STAT draining %v\n", s.draining.Load())
	w.WriteString("END\n")
}

func hexAppend(dst, src []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, hex.EncodedLen(len(src)))...)
	hex.Encode(dst[n:], src)
	return dst
}

// nextToken splits off the next space-separated token.
func nextToken(b []byte) (tok, rest []byte) {
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}

func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}
