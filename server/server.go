package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	hope "repro"
)

// Config tunes a Server. The zero value is usable: listen on an ephemeral
// localhost port with the default connection limit.
type Config struct {
	// Addr is the TCP listen address ("host:port"). Empty means
	// "127.0.0.1:0" (ephemeral port; read it back with Addr()).
	Addr string
	// MaxConns caps concurrent connections. Beyond the cap the server
	// simply stops calling Accept, so excess dials queue in the kernel
	// listen backlog — backpressure, not rejection. 0 means
	// DefaultMaxConns.
	MaxConns int
	// Logf receives connection-level diagnostics. Nil discards them.
	Logf func(format string, args ...any)
}

// DefaultMaxConns is the connection cap when Config.MaxConns is zero.
const DefaultMaxConns = 256

// ErrServerClosed is returned by Serve after Shutdown begins, mirroring
// net/http's contract: it signals an orderly stop, not a failure.
var ErrServerClosed = errors.New("server: closed")

// Server serves a hope.Store over the wire protocol in this package. It
// is written against the Store interface alone — any present or future
// implementation plugs in unchanged — plus an optional Quiescer upgrade
// at shutdown.
type Server struct {
	store hope.Store
	cfg   Config

	ln       net.Listener
	sem      chan struct{} // acquired before Accept: connection backpressure
	draining atomic.Bool
	wg       sync.WaitGroup // live connection handlers

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	shutdown bool

	// Serving counters, exposed through the stats command.
	connsTotal  atomic.Uint64
	cmdGet      atomic.Uint64
	cmdSet      atomic.Uint64
	cmdDel      atomic.Uint64
	cmdRange    atomic.Uint64
	getHits     atomic.Uint64
	rangeKeys   atomic.Uint64
	protoErrors atomic.Uint64
}

// New builds a Server over store. The store is borrowed until Shutdown,
// which quiesces and closes it as part of the drain.
func New(store hope.Store, cfg Config) *Server {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = DefaultMaxConns
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{
		store: store,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.MaxConns),
		conns: make(map[net.Conn]struct{}),
	}
}

// Listen binds the configured address. Separate from Serve so callers can
// learn the ephemeral port (Addr) before the accept loop starts.
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve runs the accept loop until Shutdown closes the listener, then
// returns ErrServerClosed. The connection-limit semaphore is acquired
// *before* Accept: at the cap the server stops accepting entirely and
// excess clients wait in the listen backlog instead of being churned
// through accept-then-close.
func (s *Server) Serve() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	for {
		s.sem <- struct{}{}
		conn, err := s.ln.Accept()
		if err != nil {
			<-s.sem
			if s.draining.Load() {
				return ErrServerClosed
			}
			return err
		}
		s.connsTotal.Add(1)
		s.track(conn, true)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			defer s.track(conn, false)
			s.handle(conn)
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	return s.Serve()
}

func (s *Server) track(conn net.Conn, add bool) {
	s.mu.Lock()
	if add {
		s.conns[conn] = struct{}{}
		// A connection accepted in the window between Shutdown closing the
		// listener and its poke loop running would otherwise miss the wake
		// poke and stall the drain until the context expires.
		if s.draining.Load() {
			conn.SetReadDeadline(time.Now())
		}
	} else {
		delete(s.conns, conn)
	}
	s.mu.Unlock()
}

// Shutdown drains the server: stop accepting, let in-flight requests
// finish, then quiesce and close the store. Handlers blocked in a read
// are poked with an immediate read deadline; because bufio serves
// complete lines from its buffer without touching the socket, every
// request the client managed to pipeline before the drain still gets a
// reply before its connection closes. If ctx expires first, remaining
// connections are severed and ctx.Err is returned — but the store is
// still quiesced and closed, so acknowledged writes are never abandoned
// mid-migration.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	s.mu.Unlock()

	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		// Wake blocked readers now; handlers notice draining and finish.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
	}

	// The store drain proper: wait out background work (adaptive rebuild
	// migrations and their acknowledged writes), then close. Quiesce
	// before Close is not redundant — Close also cancels, but an explicit
	// quiesce first lets an in-flight rebuild that is nearly done land
	// instead of being torn down.
	if q, ok := s.store.(hope.Quiescer); ok {
		q.Quiesce()
	}
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// RunUntilSignal serves until one of the given signals arrives (SIGTERM,
// typically), then drains with the given grace period. It is the main
// loop of cmd/hopeserve, kept here so it is testable.
func (s *Server) RunUntilSignal(grace time.Duration, sigs ...os.Signal) error {
	errc := make(chan error, 1)
	go func() { errc <- s.Serve() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, sigs...)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		// Accept loop died on its own — still release the store.
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		s.Shutdown(ctx)
		return err
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return err
		}
		<-errc // Serve's ErrServerClosed
		return nil
	}
}

// Connection handler buffer sizes: large enough that a deep pipeline of
// small requests is parsed (and answered) per syscall pair.
const connBufSize = 64 << 10

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, connBufSize)
	w := bufio.NewWriterSize(conn, connBufSize)
	for {
		line, err := r.ReadSlice('\n')
		if err != nil {
			if err == bufio.ErrBufferFull {
				s.protoErrors.Add(1)
				fmt.Fprintf(w, "ERR line exceeds %d bytes\n", MaxLineLen)
				w.Flush()
				return
			}
			// Read failure: a real disconnect, or the Shutdown deadline
			// poke. Either way every complete buffered line was already
			// served (bufio only hits the socket when the buffer lacks
			// one), so flushing pending replies completes the drain
			// contract for this connection.
			if !s.draining.Load() && !errors.Is(err, net.ErrClosed) && !isEOF(err) {
				s.cfg.Logf("conn %s: read: %v", conn.RemoteAddr(), err)
			}
			w.Flush()
			return
		}
		if len(line) > MaxLineLen {
			s.protoErrors.Add(1)
			fmt.Fprintf(w, "ERR line exceeds %d bytes\n", MaxLineLen)
			w.Flush()
			return
		}
		if !s.dispatch(trimLine(line), w) {
			w.Flush()
			return
		}
		// Pipelining: flush only once the read buffer holds no further
		// complete request, batching replies for the whole burst.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

func trimLine(line []byte) []byte {
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// dispatch executes one request line, writing the reply into w. It
// returns false when the connection should close (quit).
func (s *Server) dispatch(line []byte, w *bufio.Writer) bool {
	cmd, rest := nextToken(line)
	switch string(cmd) {
	case "get":
		key, rest := nextToken(rest)
		if len(key) == 0 || len(rest) != 0 {
			return s.errf(w, "usage: get <key>")
		}
		s.cmdGet.Add(1)
		if v, ok := s.store.Get(key); ok {
			s.getHits.Add(1)
			w.WriteString("VAL ")
			w.Write(strconv.AppendUint(nil, v, 10))
			w.WriteByte('\n')
		} else {
			w.WriteString("NF\n")
		}
	case "set":
		key, rest := nextToken(rest)
		valTok, rest := nextToken(rest)
		if len(key) == 0 || len(valTok) == 0 || len(rest) != 0 {
			return s.errf(w, "usage: set <key> <val>")
		}
		v, err := strconv.ParseUint(string(valTok), 10, 64)
		if err != nil {
			return s.errf(w, "bad value %q", valTok)
		}
		s.cmdSet.Add(1)
		if err := s.store.Put(key, v); err != nil {
			return s.errf(w, "put: %v", err)
		}
		w.WriteString("STORED\n")
	case "del":
		key, rest := nextToken(rest)
		if len(key) == 0 || len(rest) != 0 {
			return s.errf(w, "usage: del <key>")
		}
		s.cmdDel.Add(1)
		ok, err := s.store.Delete(key)
		if err != nil {
			return s.errf(w, "delete: %v", err)
		}
		if ok {
			w.WriteString("DEL\n")
		} else {
			w.WriteString("NF\n")
		}
	case "range":
		loTok, rest := nextToken(rest)
		hiTok, rest := nextToken(rest)
		limTok, rest := nextToken(rest)
		if len(loTok) == 0 || len(hiTok) == 0 || len(limTok) == 0 || len(rest) != 0 {
			return s.errf(w, "usage: range <lo|-> <hi|-> <limit>")
		}
		limit, err := strconv.Atoi(string(limTok))
		if err != nil || limit <= 0 || limit > MaxRangeLimit {
			return s.errf(w, "bad limit %q (1..%d)", limTok, MaxRangeLimit)
		}
		var lo, hi []byte
		if !bytes.Equal(loTok, []byte("-")) {
			lo = loTok
		}
		if !bytes.Equal(hiTok, []byte("-")) {
			hi = hiTok
		}
		s.cmdRange.Add(1)
		hexBuf := make([]byte, 0, 128)
		n := s.store.Scan(lo, hi, func(key []byte, val uint64) bool {
			hexBuf = hexBuf[:0]
			hexBuf = hexAppend(hexBuf, key)
			w.WriteString("K ")
			w.Write(hexBuf)
			w.WriteByte(' ')
			w.Write(strconv.AppendUint(nil, val, 10))
			w.WriteByte('\n')
			limit--
			return limit > 0
		})
		s.rangeKeys.Add(uint64(n))
		w.WriteString("END\n")
	case "stats":
		if len(rest) != 0 {
			return s.errf(w, "usage: stats")
		}
		s.writeStats(w)
	case "quit":
		return false
	default:
		return s.errf(w, "unknown command %q", cmd)
	}
	return true
}

// errf writes an ERR reply and keeps the connection open: protocol errors
// are per-request, not per-connection.
func (s *Server) errf(w *bufio.Writer, format string, args ...any) bool {
	s.protoErrors.Add(1)
	w.WriteString("ERR ")
	fmt.Fprintf(w, format, args...)
	w.WriteByte('\n')
	return true
}

func (s *Server) writeStats(w *bufio.Writer) {
	s.mu.Lock()
	curr := len(s.conns)
	s.mu.Unlock()
	stats := map[string]uint64{
		"curr_connections":  uint64(curr),
		"total_connections": s.connsTotal.Load(),
		"cmd_get":           s.cmdGet.Load(),
		"cmd_set":           s.cmdSet.Load(),
		"cmd_del":           s.cmdDel.Load(),
		"cmd_range":         s.cmdRange.Load(),
		"get_hits":          s.getHits.Load(),
		"range_keys":        s.rangeKeys.Load(),
		"protocol_errors":   s.protoErrors.Load(),
		"store_len":         uint64(s.store.Len()),
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "STAT %s %d\n", name, stats[name])
	}
	fmt.Fprintf(w, "STAT draining %v\n", s.draining.Load())
	w.WriteString("END\n")
}

func hexAppend(dst, src []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, hex.EncodedLen(len(src)))...)
	hex.Encode(dst[n:], src)
	return dst
}

// nextToken splits off the next space-separated token.
func nextToken(b []byte) (tok, rest []byte) {
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		return b[:i], b[i+1:]
	}
	return b, nil
}

func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}
