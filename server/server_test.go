package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	hope "repro"
	"repro/internal/datagen"
)

// startServer spins up a Server over store and returns it with its
// address. The cleanup shuts it down (idempotently — tests that exercise
// Shutdown themselves are unaffected) and surfaces Serve's exit error.
func startServer(t *testing.T, store hope.Store, cfg Config) (*Server, string) {
	t.Helper()
	srv := New(store, cfg)
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-errc; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return srv, srv.Addr().String()
}

func newStore(t *testing.T, opts ...hope.Option) hope.Store {
	t.Helper()
	s, err := hope.Open(hope.BTree, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestServerPointOpsAndRange(t *testing.T) {
	_, addr := startServer(t, newStore(t, hope.WithShards(4)), Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := []string{"apple", "applet", "banana", "cherry"}
	for i, k := range keys {
		if err := c.Set([]byte(k), uint64(i)); err != nil {
			t.Fatalf("set %s: %v", k, err)
		}
	}
	for i, k := range keys {
		v, ok, err := c.Get([]byte(k))
		if err != nil || !ok || v != uint64(i) {
			t.Fatalf("get %s = (%d,%v,%v), want (%d,true,nil)", k, v, ok, err, i)
		}
	}
	if _, ok, err := c.Get([]byte("durian")); err != nil || ok {
		t.Fatalf("get missing = (ok=%v, err=%v), want miss", ok, err)
	}

	// Range over an uncompressed store: stored form == original keys.
	var got []string
	n, err := c.Range([]byte("app"), []byte("c"), 100, func(k []byte, v uint64) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil || n != 3 {
		t.Fatalf("range = (%d,%v), want 3 results", n, err)
	}
	want := []string{"apple", "applet", "banana"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range keys = %v, want %v", got, want)
		}
	}
	// The per-request limit truncates the stream.
	if n, err := c.Range(nil, nil, 2, nil); err != nil || n != 2 {
		t.Fatalf("limited range = (%d,%v), want 2", n, err)
	}

	if ok, err := c.Delete([]byte("banana")); err != nil || !ok {
		t.Fatalf("delete = (%v,%v), want hit", ok, err)
	}
	if ok, err := c.Delete([]byte("banana")); err != nil || ok {
		t.Fatalf("re-delete = (%v,%v), want miss", ok, err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["store_len"] != "3" {
		t.Fatalf("store_len = %q, want 3", stats["store_len"])
	}
	if stats["cmd_set"] != "4" || stats["get_hits"] != "4" {
		t.Fatalf("counters: cmd_set=%q get_hits=%q", stats["cmd_set"], stats["get_hits"])
	}
	if stats["draining"] != "false" {
		t.Fatalf("draining = %q mid-serve", stats["draining"])
	}
}

// TestServerCompressedRange pins the documented stored-form contract: over
// a compressed store, range replies carry encoded keys, and the values —
// not the wire keys — identify the entries.
func TestServerCompressedRange(t *testing.T) {
	keys := datagen.Generate(datagen.Email, 2000, 42)
	enc, err := hope.Build(hope.DoubleChar, hope.SampleKeys(keys, 0.1, 1), hope.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := newStore(t, hope.WithEncoder(enc))
	if err := store.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	vals := map[uint64]bool{}
	n, err := c.Range(nil, nil, 500, func(k []byte, v uint64) bool {
		vals[v] = true
		return true
	})
	if err != nil || n != 500 {
		t.Fatalf("range = (%d,%v), want 500", n, err)
	}
	if len(vals) != 500 {
		t.Fatalf("range returned %d distinct values, want 500", len(vals))
	}
	for v := range vals {
		if v >= uint64(len(keys)) {
			t.Fatalf("range value %d out of key range", v)
		}
	}
}

func TestServerPipelining(t *testing.T) {
	_, addr := startServer(t, newStore(t), Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// One syscall's worth of 200 requests, then 200 replies.
	const n = 100
	var burst []byte
	for i := 0; i < n; i++ {
		burst = AppendSet(burst, fmt.Appendf(nil, "key-%03d", i), uint64(i))
	}
	for i := 0; i < n; i++ {
		burst = AppendGet(burst, fmt.Appendf(nil, "key-%03d", i))
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		rep, err := ReadReply(r)
		if err != nil || rep.Kind != ReplyStored {
			t.Fatalf("reply %d = (%+v,%v), want STORED", i, rep, err)
		}
	}
	for i := 0; i < n; i++ {
		rep, err := ReadReply(r)
		if err != nil || rep.Kind != ReplyVal || rep.Val != uint64(i) {
			t.Fatalf("reply %d = (%+v,%v), want VAL %d", n+i, rep, err, i)
		}
	}
}

func TestServerProtocolErrors(t *testing.T) {
	_, addr := startServer(t, newStore(t), Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	bad := []string{
		"bogus\n",
		"set onlykey\n",
		"set k notanumber\n",
		"get\n",
		"get too many args\n",
		"range a b 0\n",
		"range a b 99999999\n",
		"range a b\n",
	}
	for _, req := range bad {
		if _, err := conn.Write([]byte(req)); err != nil {
			t.Fatal(err)
		}
		rep, err := ReadReply(r)
		if err != nil || rep.Kind != ReplyErr {
			t.Fatalf("%q: reply (%+v,%v), want ERR", req, rep, err)
		}
	}
	// Protocol errors are per-request: the connection still serves.
	conn.Write([]byte("set alive 7\nget alive\n"))
	if rep, err := ReadReply(r); err != nil || rep.Kind != ReplyStored {
		t.Fatalf("post-ERR set: (%+v,%v)", rep, err)
	}
	if rep, err := ReadReply(r); err != nil || rep.Kind != ReplyVal || rep.Val != 7 {
		t.Fatalf("post-ERR get: (%+v,%v)", rep, err)
	}
}

// TestServerConnLimitBackpressure: with MaxConns=1 a second client's dial
// lands in the listen backlog and its request waits — unanswered but not
// rejected — until the first connection closes.
func TestServerConnLimitBackpressure(t *testing.T) {
	_, addr := startServer(t, newStore(t), Config{MaxConns: 1})

	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Set([]byte("k"), 1); err != nil { // handler live, slot taken
		t.Fatal(err)
	}

	b, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.Write([]byte("get k\n")); err != nil {
		t.Fatal(err)
	}
	b.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	var one [1]byte
	if _, err := b.Read(one[:]); err == nil {
		t.Fatal("second connection was served while the first held the only slot")
	} else if nerr, ok := err.(net.Error); !ok || !nerr.Timeout() {
		t.Fatalf("expected timeout while queued, got %v", err)
	}

	a.Close() // slot freed: the queued connection is accepted and served
	b.SetReadDeadline(time.Now().Add(5 * time.Second))
	rep, err := ReadReply(bufio.NewReader(b))
	if err != nil || rep.Kind != ReplyVal || rep.Val != 1 {
		t.Fatalf("queued get = (%+v,%v), want VAL 1", rep, err)
	}
}

// gateStore wraps a Store so a test can hold a Put mid-flight while the
// rest of the pipelined burst sits in the handler's read buffer.
type gateStore struct {
	hope.Store
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateStore) Put(key []byte, val uint64) error {
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return g.Store.Put(key, val)
}

// TestServerDrainFlushesBufferedRequests pins the drain contract: requests
// the handler already read into userspace are answered and flushed even
// when Shutdown lands while they queue behind a slow op.
func TestServerDrainFlushesBufferedRequests(t *testing.T) {
	gate := &gateStore{Store: newStore(t), entered: make(chan struct{}), release: make(chan struct{})}
	srv := New(gate, Config{})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var burst []byte
	burst = AppendSet(burst, []byte("slow"), 1)
	burst = AppendGet(burst, []byte("slow"))
	burst = AppendGet(burst, []byte("slow"))
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}

	<-gate.entered // handler is inside Put; the two gets sit in its buffer
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown poke the connection
	close(gate.release)

	r := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	wantKinds := []ReplyKind{ReplyStored, ReplyVal, ReplyVal}
	for i, want := range wantKinds {
		rep, err := ReadReply(r)
		if err != nil || rep.Kind != want {
			t.Fatalf("drained reply %d = (%+v,%v), want kind %d", i, rep, err, want)
		}
	}
	if _, err := ReadReply(r); err == nil {
		t.Fatal("connection still open after drain")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
}

// TestServerDrainDuringRebuild is the lifecycle-hardening satellite: a
// SIGTERM-style drain landing while the adaptive index is mid-rebuild must
// neither hang nor drop a write the server acknowledged. Run under -race
// in CI (race-stress leg).
func TestServerDrainDuringRebuild(t *testing.T) {
	keys := datagen.Generate(datagen.Email, 8000, 7)
	st, err := hope.Open(hope.BTree, hope.WithAdaptive(hope.AdaptiveOptions{
		Scheme:         hope.DoubleChar,
		Shards:         4,
		Manual:         true, // rebuild fires when the test says so
		MigrationBatch: 4,    // tiny batches: migration spans the whole drain
	}))
	if err != nil {
		t.Fatal(err)
	}
	idx := st.(*hope.AdaptiveIndex)
	if err := idx.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}

	srv := New(idx, Config{})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	// Writers: each connection streams fresh keys and records which ones
	// the server acknowledged with STORED before the drain cut it off.
	const writers = 4
	acked := make([]int, writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			c, err := Dial(srv.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Appendf(nil, "drain-%d-%06d@live.test", wid, i)
				if err := c.Set(key, uint64(wid)<<32|uint64(i)); err != nil {
					return // drain severed the conn; everything acked so far counts
				}
				acked[wid] = i + 1
			}
		}(wid)
	}

	time.Sleep(30 * time.Millisecond) // writers flowing
	rebuildDone := make(chan error, 1)
	go func() { rebuildDone <- idx.Rebuild() }()
	time.Sleep(10 * time.Millisecond) // rebuild migrating

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown during rebuild: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := <-errc; err != ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	// The interrupted rebuild either completed or aborted cleanly — both
	// are fine; hanging or panicking is not.
	if err := <-rebuildDone; err != nil {
		t.Logf("rebuild aborted by drain (allowed): %v", err)
	}

	// Every acknowledged write must still be readable after Quiesce+Close.
	total := 0
	for wid := 0; wid < writers; wid++ {
		for i := 0; i < acked[wid]; i++ {
			key := fmt.Appendf(nil, "drain-%d-%06d@live.test", wid, i)
			v, ok := idx.Get(key)
			if !ok || v != uint64(wid)<<32|uint64(i) {
				t.Fatalf("acked write %s lost across drain (got %d,%v)", key, v, ok)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no writes were acknowledged before the drain; test proved nothing")
	}
	// And the preloaded corpus survived whichever migration state the
	// drain interrupted.
	for i, k := range keys {
		if v, ok := idx.Get(k); !ok || v != uint64(i) {
			t.Fatalf("preloaded key %q lost across drain (got %d,%v)", k, v, ok)
		}
	}
	t.Logf("%d writes acked across %d connections; all survived the drain", total, writers)
}

// TestRunUntilSignal exercises the cmd/hopeserve main loop end to end:
// serve, catch a signal, drain, exit nil.
func TestRunUntilSignal(t *testing.T) {
	store := newStore(t)
	srv := New(store, Config{})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.RunUntilSignal(10*time.Second, syscall.SIGUSR1) }()

	c, err := DialRetry(srv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("sig"), 9); err != nil {
		t.Fatal(err)
	}
	c.Close()

	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGUSR1); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("RunUntilSignal = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunUntilSignal did not drain after the signal")
	}
	if _, err := net.DialTimeout("tcp", srv.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after signal drain")
	}
	if v, ok := store.Get([]byte("sig")); !ok || v != 9 {
		t.Fatal("write lost across signal drain")
	}
}

// TestServerSnapshotOnDrain wires the persistence layer through the drain
// hook exactly as cmd/hopeserve does: writes arrive over the wire, the
// drain quiesces the store and then snapshots it, and a fresh Open over
// the snapshot directory serves the same keys.
func TestServerSnapshotOnDrain(t *testing.T) {
	dir := t.TempDir()
	store := newStore(t, hope.WithShards(4), hope.WithSnapshotDir(dir))
	p := store.(*hope.Persistent)

	srv := New(store, Config{
		OnDrain: func() error { return p.Snapshot() },
	})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := c.Set([]byte(fmt.Sprintf("drain-key-%02d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-errc; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if p.Generation() != 1 {
		t.Fatalf("drain snapshot generation = %d, want 1", p.Generation())
	}

	r, err := hope.Open(hope.BTree, hope.WithSnapshotDir(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	rp := r.(*hope.Persistent)
	if !rp.Restored() || rp.Len() != 50 {
		t.Fatalf("restored=%v len=%d, want true/50", rp.Restored(), rp.Len())
	}
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("drain-key-%02d", i))
		if v, ok := r.Get(k); !ok || v != uint64(i) {
			t.Fatalf("restored get %q = (%d,%v), want (%d,true)", k, v, ok, i)
		}
	}
}

// TestServerDrainHookErrorSurfaces: a failing drain hook is reported by
// Shutdown but never prevents the store close.
func TestServerDrainHookErrorSurfaces(t *testing.T) {
	store := newStore(t)
	hookErr := fmt.Errorf("hook failed")
	closed := false
	srv := New(store, Config{
		OnDrain: func() error { closed = store.Len() >= 0; return hookErr },
	})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != hookErr {
		t.Fatalf("Shutdown = %v, want the drain hook's error", err)
	}
	<-errc
	if !closed {
		t.Fatal("drain hook never ran")
	}
	// The store was still closed despite the hook error.
	if err := store.Put([]byte("x"), 1); err != hope.ErrClosed {
		t.Fatalf("put after shutdown = %v, want ErrClosed", err)
	}
}
