package server

import "strconv"

// ServerStats wraps one stats-verb reply with typed accessors over the
// flat name → string map the wire carries. Missing names read as zero
// values — a client of a newer server degrades gracefully against an
// older one, and vice versa.
type ServerStats struct {
	raw map[string]string
}

// StatsTyped fetches the server's counters and wraps them for typed
// access; Raw exposes the underlying map for anything not covered.
func (c *Client) StatsTyped() (*ServerStats, error) {
	raw, err := c.Stats()
	if err != nil {
		return nil, err
	}
	return &ServerStats{raw: raw}, nil
}

// Raw returns the underlying name → value map.
func (s *ServerStats) Raw() map[string]string { return s.raw }

// Has reports whether the server exported the named stat.
func (s *ServerStats) Has(name string) bool {
	_, ok := s.raw[name]
	return ok
}

// Uint reads one stat as an unsigned integer (0 when absent or
// unparsable). Float-rendered integers ("1.2e+06") parse too.
func (s *ServerStats) Uint(name string) uint64 {
	v, ok := s.raw[name]
	if !ok {
		return 0
	}
	if n, err := strconv.ParseUint(v, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil && f >= 0 {
		return uint64(f)
	}
	return 0
}

// Float reads one stat as a float64 (0 when absent or unparsable).
func (s *ServerStats) Float(name string) float64 {
	f, err := strconv.ParseFloat(s.raw[name], 64)
	if err != nil {
		return 0
	}
	return f
}

// Bool reads one stat as a boolean: "true" and nonzero numbers are true.
func (s *ServerStats) Bool(name string) bool {
	v, ok := s.raw[name]
	if !ok {
		return false
	}
	if v == "true" {
		return true
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		return f != 0
	}
	return false
}

// Draining reports whether the server has begun its shutdown drain.
func (s *ServerStats) Draining() bool { return s.Bool("draining") }

// CmdCount returns the invocation count of one command verb ("get",
// "set", "del", "range", "stats").
func (s *ServerStats) CmdCount(op string) uint64 {
	return s.Uint("hope_server_" + op + "_total")
}

// LatencyUs returns one command's latency statistic in microseconds.
// quantile is "p50", "p99", "p999", "mean", or "max"; 0 when the server
// has not yet sampled that command.
func (s *ServerStats) LatencyUs(op, quantile string) float64 {
	return s.Float("hope_server_" + op + "_" + quantile + "_us")
}

// LifecycleHealth is the adaptive store's health surface as exported
// through the stats verb; the zero value means the store exports no
// lifecycle metrics (a plain Index or ShardedIndex).
type LifecycleHealth struct {
	State               int
	Generation          int
	Seen                uint64
	RecentCPR           float64
	BuildCPR            float64
	Rebuilds            uint64
	Aborts              uint64
	Degraded            bool
	ConsecutiveFailures int
	MigratedShards      int
}

// Lifecycle extracts the adaptive store's lifecycle health. Check
// s.Has("hope_lifecycle_state") to distinguish a zero-valued report from
// a store that exports none.
func (s *ServerStats) Lifecycle() LifecycleHealth {
	return LifecycleHealth{
		State:               int(s.Float("hope_lifecycle_state")),
		Generation:          int(s.Float("hope_lifecycle_generation")),
		Seen:                s.Uint("hope_lifecycle_seen"),
		RecentCPR:           s.Float("hope_lifecycle_recent_cpr"),
		BuildCPR:            s.Float("hope_lifecycle_build_cpr"),
		Rebuilds:            s.Uint("hope_lifecycle_rebuilds_total"),
		Aborts:              s.Uint("hope_lifecycle_aborts_total"),
		Degraded:            s.Bool("hope_lifecycle_degraded"),
		ConsecutiveFailures: int(s.Float("hope_lifecycle_consecutive_failures")),
		MigratedShards:      int(s.Float("hope_lifecycle_migrated_shards")),
	}
}
