package server

import (
	"fmt"
	"testing"

	hope "repro"
)

// TestStatsTypedRoundTrip drives real traffic through a server over an
// adaptive store and round-trips the stats verb through the typed
// accessors: legacy counters, per-command latency percentiles, and the
// lifecycle health block must all arrive parsed and consistent.
func TestStatsTypedRoundTrip(t *testing.T) {
	store, err := hope.Open(hope.BTree, hope.WithAdaptive(hope.AdaptiveOptions{
		Shards: 2, Manual: true,
	}))
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, store, Config{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if err := c.Set([]byte(fmt.Sprintf("stat-key-%03d", i)), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, ok, err := c.Get([]byte(fmt.Sprintf("stat-key-%03d", i))); err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, _, err := c.Get([]byte("stat-missing")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Range(nil, nil, 10, nil); err != nil {
		t.Fatal(err)
	}

	st, err := c.StatsTyped()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.CmdCount("get"); got != n+1 {
		t.Fatalf("CmdCount(get) = %d, want %d", got, n+1)
	}
	if got := st.CmdCount("set"); got != n {
		t.Fatalf("CmdCount(set) = %d, want %d", got, n)
	}
	if got := st.CmdCount("range"); got != 1 {
		t.Fatalf("CmdCount(range) = %d, want 1", got)
	}
	// Legacy counters and the typed series must agree.
	if st.Uint("cmd_get") != st.CmdCount("get") {
		t.Fatalf("cmd_get %d != hope_server_get_total %d", st.Uint("cmd_get"), st.CmdCount("get"))
	}
	if got := st.Uint("get_hits"); got != n {
		t.Fatalf("get_hits = %d, want %d", got, n)
	}
	if got := st.Uint("range_keys"); got != 10 {
		t.Fatalf("range_keys = %d, want 10", got)
	}
	if got := st.Uint("store_len"); got != n {
		t.Fatalf("store_len = %d, want %d", got, n)
	}
	// Server commands record every latency, so percentiles must be live
	// and ordered.
	p50, p99 := st.LatencyUs("get", "p50"), st.LatencyUs("get", "p99")
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("get latency p50=%v p99=%v, want 0 < p50 <= p99", p50, p99)
	}
	if max := st.LatencyUs("set", "max"); max <= 0 {
		t.Fatalf("set max latency = %v, want > 0", max)
	}
	if st.Draining() {
		t.Fatal("Draining() = true on a live server")
	}

	// The adaptive store's lifecycle block rides along.
	if !st.Has("hope_lifecycle_state") {
		t.Fatal("adaptive store exported no hope_lifecycle_state")
	}
	lc := st.Lifecycle()
	if lc.Generation != 0 || lc.Rebuilds != 0 || lc.Degraded {
		t.Fatalf("lifecycle = %+v, want pristine generation 0", lc)
	}
	if lc.Seen == 0 {
		t.Fatalf("lifecycle Seen = 0, want the %d observed inserts", n)
	}

	// A plain sharded store must degrade gracefully: no lifecycle block,
	// zero-valued accessors, no errors.
	plain, err := hope.Open(hope.BTree, hope.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	_, addr2 := startServer(t, plain, Config{})
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.StatsTyped()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Has("hope_lifecycle_state") {
		t.Fatal("plain sharded store exported lifecycle metrics")
	}
	if lc := st2.Lifecycle(); lc != (LifecycleHealth{}) {
		t.Fatalf("Lifecycle() on plain store = %+v, want zero value", lc)
	}
	if !st2.Has("hope_index_get_total") {
		t.Fatal("sharded store exported no hope_index_get_total")
	}
}
