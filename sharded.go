package hope

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ShardedIndex is the concurrent serving layer over the compressed-index
// facade: N lock-striped shards, each wrapping one search tree
// (indexBackend) behind its own RWMutex, partitioned on the original key
// bytes by a pluggable Partitioner (hash by default; range with sampled
// split points via NewRangeShardedIndex). The expensive build artifact —
// the HOPE dictionary — is built once and shared read-only by every shard;
// what is duplicated per shard is only the mutable point-encode state (an
// O(1) Encoder clone, see core.Encoder.Clone), so memory overhead versus a
// single Index is a few hundred bytes per shard, not a dictionary per
// shard.
//
// Concurrency model:
//
//   - Put/Get/Delete route the original key to one shard. Writers take
//     that shard's exclusive lock; Get encodes outside any lock through a
//     pooled scratch buffer (core.ConcurrentEncoder) and holds only the
//     shard's read lock for the tree probe, so read-mostly workloads scale
//     with the shard count and Get is allocation-free in steady state.
//   - Scan/ScanPrefix translate bounds once (through the concurrent
//     encoder) and plan by partition shape. Hash shards interleave the
//     keyspace, so every shard is drained in chunks under its read lock
//     and a k-way merge interleaves the chunks by encoded-byte order,
//     which is original-key order. Range shards hold disjoint ascending
//     intervals, so the planner prunes to the shards whose interval
//     overlaps the query (compared in encoded space against precomputed
//     encoded split points) and streams them sequentially with no merge
//     and no heap — a short scan touches one or two shards and pays one
//     cursor. Either way a scan is *per-shard* consistent, not a
//     point-in-time snapshot across shards: keys inserted or deleted while
//     the scan runs may or may not appear, exactly as in any lock-striped
//     map.
//   - Bulk partitions the keys once by shard and loads all shards in
//     parallel, each shard running the bulk-encode pipeline over its
//     partition. An unseeded range partitioner is seeded here: the first
//     Bulk into an empty index samples split points from its corpus
//     (RangeSplits over a core.Sampler reservoir).
//
// The callback contract differs from Index in one respect: the stored
// (encoded) key passed to a scan callback is only valid for the duration
// of the callback (it lives in a reused merge buffer).
type ShardedIndex struct {
	backend Backend
	enc     *core.Encoder           // build-phase template; nil = uncompressed
	cenc    *core.ConcurrentEncoder // pooled encode state for the read path
	shards  []*indexShard
	part    Partitioner

	// encSplits caches the partitioner's split points translated into
	// encoded space (EncodeBound per split) so the scan planner can prune
	// shards by comparing encoded query bounds against encoded shard
	// boundaries directly. nil when the partitioner is unordered, has no
	// splits yet, or is single-shard.
	encSplits atomic.Pointer[[][]byte]

	// maxKeyLen tracks the longest original key ever stored (monotonic;
	// ScanPrefix feeds it to the encoder's interval-ceiling bound).
	maxKeyLen atomic.Int64

	scratch sync.Pool // *pointScratch; Get's zero-alloc encode buffers

	// closed is set by Close; the public mutation entry points (Put,
	// Delete, Bulk) refuse with ErrClosed afterwards. Internal
	// shard-routed hooks stay unchecked — AdaptiveIndex drives those and
	// gates its own lifecycle.
	closed atomic.Bool

	// met instruments the public ops (always-on, sampled latencies; see
	// observe.go). Internal shard-routed entry points (getShard and
	// friends) are not counted — AdaptiveIndex drives those and keeps its
	// own instruments, so nothing double-counts.
	met opMetrics
}

// indexShard is one lock stripe: a search tree plus the shard-owned
// point-encode state. enc is guarded by mu (write lock) — it is the
// single-writer encoder used for Put's owned encodes, cloned from the
// shared template so all shards read one dictionary.
type indexShard struct {
	mu  sync.RWMutex
	be  indexBackend
	enc *core.Encoder // nil when uncompressed
}

// pointScratch is a pooled encode destination for the lock-free read path.
type pointScratch struct{ buf []byte }

// DefaultShards returns the default shard count: the smallest power of two
// at or above 4x GOMAXPROCS (striping beyond the parallelism level keeps
// hash collisions from serializing unrelated keys), clamped to [1, 256].
func DefaultShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n > 256 {
		n = 256
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewShardedIndex builds a concurrent index of nShards lock-striped,
// hash-partitioned shards (rounded up to a power of two; <= 0 selects
// DefaultShards) over the named backend. enc may be nil for an
// uncompressed index; otherwise it is the build-phase template: its
// read-only dictionary is shared by every shard and by the pooled
// read-path encoder, and the template must not be used directly afterwards
// (clone it first if independent use is needed).
//
// Deprecated: use Open(backend, WithEncoder(enc), WithShards(nShards)),
// which returns the same index behind the unified Store interface.
func NewShardedIndex(backend Backend, enc *core.Encoder, nShards int) (*ShardedIndex, error) {
	return NewShardedIndexWithPartitioner(backend, enc, NewHashPartitioner(nShards))
}

// NewRangeShardedIndex builds a range-partitioned concurrent index: shards
// own disjoint ascending key intervals, so short scans touch only the
// shards their bounds overlap (see the type comment). corpus, when
// non-nil, is a sample of the expected key population from which the split
// points are drawn (RangeSplits); with a nil corpus the partitioner starts
// unseeded and the first Bulk into the empty index seeds it from the
// loaded keys.
//
// Deprecated: use Open(backend, WithEncoder(enc), WithShards(nShards),
// WithRangePartitioner(corpus)), which returns the same index behind the
// unified Store interface.
func NewRangeShardedIndex(backend Backend, enc *core.Encoder, nShards int, corpus [][]byte) (*ShardedIndex, error) {
	if nShards <= 0 {
		nShards = DefaultShards()
	}
	nShards = ceilPow2(nShards)
	var p *RangePartitioner
	if corpus != nil {
		p = NewRangePartitioner(RangeSplits(corpus, nShards, splitSeed))
		if !p.seeded() { // empty corpus or single shard
			p = NewUnseededRangePartitioner(nShards)
		}
	} else {
		p = NewUnseededRangePartitioner(nShards)
	}
	return NewShardedIndexWithPartitioner(backend, enc, p)
}

// splitSeed drives split-point reservoir sampling; fixed so identical
// corpora partition identically across runs.
const splitSeed = 1

// NewShardedIndexWithPartitioner builds a concurrent index whose shards
// are laid out by the given partitioner (one lock-striped shard per
// partition). See NewShardedIndex for the encoder contract.
func NewShardedIndexWithPartitioner(backend Backend, enc *core.Encoder, p Partitioner) (*ShardedIndex, error) {
	s := &ShardedIndex{
		backend: backend,
		enc:     enc,
		shards:  make([]*indexShard, p.NumShards()),
		part:    p,
		met:     newOpMetrics(),
	}
	if enc != nil {
		s.cenc = core.NewConcurrentEncoder(enc)
	}
	for i := range s.shards {
		be, err := newIndexBackend(backend)
		if err != nil {
			return nil, err
		}
		sh := &indexShard{be: be}
		if enc != nil {
			sh.enc = enc.Clone()
		}
		s.shards[i] = sh
	}
	s.scratch.New = func() any { return new(pointScratch) }
	s.refreshEncSplits()
	return s, nil
}

// refreshEncSplits (re)translates the partitioner's split points into
// encoded space for the scan planner. Called at construction and after
// Bulk seeds an unseeded range partitioner; both points precede or
// serialize with key storage under the final routing, and the pointer swap
// is atomic, so concurrent scans see either no splits (full span) or the
// complete set.
func (s *ShardedIndex) refreshEncSplits() {
	splits := s.part.Splits()
	if !s.part.Ordered() || len(splits) == 0 {
		return
	}
	es := make([][]byte, len(splits))
	for i, sp := range splits {
		if s.cenc != nil {
			es[i] = s.cenc.EncodeBound(sp)
		} else {
			es[i] = append([]byte(nil), sp...)
		}
	}
	s.encSplits.Store(&es)
}

// Backend returns the wrapped tree's name.
func (s *ShardedIndex) Backend() Backend { return s.backend }

// Encoder returns the shared build-phase encoder template (nil when
// uncompressed). It must not be used for point encodes while the index is
// serving; clone it first.
func (s *ShardedIndex) Encoder() *core.Encoder { return s.enc }

// NumShards returns the shard count.
func (s *ShardedIndex) NumShards() int { return len(s.shards) }

// Partitioner returns the policy routing original keys to shards.
func (s *ShardedIndex) Partitioner() Partitioner { return s.part }

// ShardLens returns the per-shard key counts — the skew profile of the
// partition (a moment's snapshot under concurrent writers). Hash
// partitions are near-uniform by construction; range partitions are as
// balanced as their split points, so this is the observability hook for
// re-sampling decisions.
func (s *ShardedIndex) ShardLens() []int {
	out := make([]int, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		out[i] = sh.be.length()
		sh.mu.RUnlock()
	}
	return out
}

// MaxShardFrac reduces ShardLens to the one number skew policies act on:
// the largest shard's fraction of the stored keys (0 for an empty index).
// 1/NumShards is perfectly balanced; values near 1 mean one shard holds
// nearly everything.
func (s *ShardedIndex) MaxShardFrac() float64 {
	frac, _ := s.maxShardFrac()
	return frac
}

func (s *ShardedIndex) maxShardFrac() (frac float64, total int) {
	maxLen := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n := sh.be.length()
		sh.mu.RUnlock()
		total += n
		if n > maxLen {
			maxLen = n
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(maxLen) / float64(total), total
}

func (s *ShardedIndex) trackLen(n int) {
	for {
		cur := s.maxKeyLen.Load()
		if int64(n) <= cur || s.maxKeyLen.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Put inserts or overwrites one key. The owned encode (backends retain the
// stored key) runs on the shard's private encoder under the shard's write
// lock, so concurrent writers to different shards never share bit-buffer
// state.
func (s *ShardedIndex) Put(key []byte, val uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	shard := s.shardIdx(key)
	t := s.met.put.Begin(uint64(shard))
	_, err := s.putShard(shard, key, val)
	s.met.put.End(t)
	return err
}

// putShard is Put routed to a known shard, reporting the stored (encoded)
// key length — the per-shard migration hook AdaptiveIndex drives: the
// caller has already routed the original key (routing is
// dictionary-independent, so every generation agrees on the shard), and
// the returned length feeds the lifecycle tracker's rolling
// compression-rate estimate without a second encode.
func (s *ShardedIndex) putShard(shard int, key []byte, val uint64) (storedLen int, err error) {
	s.trackLen(len(key))
	sh := s.shards[shard]
	sh.mu.Lock()
	var ek []byte
	if sh.enc != nil {
		ek = sh.enc.Encode(key)
	} else {
		ek = append([]byte(nil), key...)
	}
	err = sh.be.insert(ek, val)
	sh.mu.Unlock()
	return len(ek), err
}

// Get returns the value stored under key. Zero allocations in steady
// state: the encode destination comes from a pool, the shard probe runs
// under a read lock, and the buffer returns to the pool afterwards.
func (s *ShardedIndex) Get(key []byte) (uint64, bool) {
	shard := s.shardIdx(key)
	t := s.met.get.Begin(uint64(shard))
	v, ok := s.getShard(shard, key)
	s.met.get.End(t)
	return v, ok
}

// getShard is Get routed to a known shard (see putShard).
func (s *ShardedIndex) getShard(shard int, key []byte) (uint64, bool) {
	sh := s.shards[shard]
	if s.cenc == nil {
		sh.mu.RLock()
		v, ok := sh.be.get(key)
		sh.mu.RUnlock()
		return v, ok
	}
	sc := s.scratch.Get().(*pointScratch)
	ek, _ := s.cenc.EncodeBits(sc.buf, key)
	sh.mu.RLock()
	v, ok := sh.be.get(ek)
	sh.mu.RUnlock()
	sc.buf = ek[:0]
	s.scratch.Put(sc)
	return v, ok
}

// Delete removes key, reporting whether it was present. Like Get it
// encodes through the pooled scratch (backends do not retain point-op
// buffers — see TestPointOpScratchNotRetained), but holds the shard's
// write lock for the tree mutation.
func (s *ShardedIndex) Delete(key []byte) (bool, error) {
	if s.closed.Load() {
		return false, ErrClosed
	}
	shard := s.shardIdx(key)
	t := s.met.del.Begin(uint64(shard))
	ok, err := s.deleteShard(shard, key)
	s.met.del.End(t)
	return ok, err
}

// deleteShard is Delete routed to a known shard (see putShard).
func (s *ShardedIndex) deleteShard(shard int, key []byte) (bool, error) {
	sh := s.shards[shard]
	if s.cenc == nil {
		sh.mu.Lock()
		ok, err := sh.be.remove(key)
		sh.mu.Unlock()
		return ok, err
	}
	sc := s.scratch.Get().(*pointScratch)
	ek, _ := s.cenc.EncodeBits(sc.buf, key)
	sh.mu.Lock()
	ok, err := sh.be.remove(ek)
	sh.mu.Unlock()
	sc.buf = ek[:0]
	s.scratch.Put(sc)
	return ok, err
}

// upsertShard resolves key against a known shard in ONE pass: a single
// scratch encode and a single lock hold cover both the presence probe and
// the insert-if-absent, where a getShard-then-putShard sequence pays two
// encodes and two lock acquisitions. When the key exists its stored value
// is returned untouched (the caller decides what an overwrite means — the
// adaptive layer updates the record the value points at); when absent, val
// is inserted. The existing path is allocation-free in steady state.
func (s *ShardedIndex) upsertShard(shard int, key []byte, val uint64) (existing uint64, existed bool, storedLen int, err error) {
	s.trackLen(len(key))
	sh := s.shards[shard]
	if s.cenc == nil {
		sh.mu.Lock()
		if v, ok := sh.be.get(key); ok {
			sh.mu.Unlock()
			return v, true, len(key), nil
		}
		err = sh.be.insert(append([]byte(nil), key...), val)
		sh.mu.Unlock()
		return 0, false, len(key), err
	}
	sc := s.scratch.Get().(*pointScratch)
	ek, _ := s.cenc.EncodeBits(sc.buf, key)
	storedLen = len(ek)
	sh.mu.Lock()
	if v, ok := sh.be.get(ek); ok {
		sh.mu.Unlock()
		sc.buf = ek[:0]
		s.scratch.Put(sc)
		return v, true, storedLen, nil
	}
	err = sh.be.insert(append([]byte(nil), ek...), val)
	sh.mu.Unlock()
	sc.buf = ek[:0]
	s.scratch.Put(sc)
	return 0, false, storedLen, err
}

// upsertShardEncoded is upsertShard for a key whose stored form enc was
// already produced by a bulk encode: the adaptive migration re-encodes
// whole batches through EncodeAll (the word-parallel batch kernels)
// instead of paying a scratch point-encode per record. enc must be the
// key's stored form — an EncodeAll/EncodeBits result, or the key itself
// when the index is uncompressed (see encodeBatch). The insert copies
// enc, so callers may hand out slices of a transient shared backing.
func (s *ShardedIndex) upsertShardEncoded(shard int, key, enc []byte, val uint64) (existing uint64, existed bool, err error) {
	s.trackLen(len(key))
	sh := s.shards[shard]
	sh.mu.Lock()
	if v, ok := sh.be.get(enc); ok {
		sh.mu.Unlock()
		return v, true, nil
	}
	err = sh.be.insert(append([]byte(nil), enc...), val)
	sh.mu.Unlock()
	return 0, false, err
}

// encodeBatch bulk-encodes keys into their stored forms through the
// parallel encode pipeline (and its batch kernels). It returns nil when
// the index stores keys uncompressed — callers then use the keys as the
// stored forms directly.
func (s *ShardedIndex) encodeBatch(keys [][]byte) [][]byte {
	if s.cenc == nil {
		return nil
	}
	return s.cenc.EncodeAll(keys)
}

// Bulk loads keys[i] -> vals[i]: the keys are partitioned once by the
// partitioner, then every shard loads its partition in parallel, each
// running the parallel bulk-encode pipeline over its own slice of the
// shared dictionary. A nil vals assigns each key its position. For the
// SuRF backend this is the only way to populate the index (each shard
// builds its own filter over its partition).
//
// An unseeded range partitioner is seeded here: when the index is still
// empty, split points are sampled from the corpus (RangeSplits) before
// partitioning, so the load itself defines the key intervals. Seeding
// requires the empty index — Bulk into a populated unseeded index loads
// everything into shard 0 rather than silently re-routing stored keys.
func (s *ShardedIndex) Bulk(keys [][]byte, vals []uint64) error {
	if s.closed.Load() {
		return ErrClosed
	}
	if vals != nil && len(vals) != len(keys) {
		return fmt.Errorf("hope: %d keys but %d values", len(keys), len(vals))
	}
	if rp, ok := s.part.(*RangePartitioner); ok && !rp.seeded() && rp.NumShards() > 1 &&
		len(keys) > 0 && s.Len() == 0 {
		if splits := RangeSplits(keys, rp.NumShards(), splitSeed); splits != nil {
			rp.seed(splits)
			s.refreshEncSplits()
		}
	}
	n := len(s.shards)
	parts := make([][][]byte, n)
	pvals := make([][]uint64, n)
	// Pre-size from an even split; skew is bounded by the hash.
	for i := range parts {
		parts[i] = make([][]byte, 0, len(keys)/n+1)
		pvals[i] = make([]uint64, 0, len(keys)/n+1)
	}
	for i, k := range keys {
		s.trackLen(len(k))
		w := s.shardIdx(k)
		parts[w] = append(parts[w], k)
		if vals != nil {
			pvals[w] = append(pvals[w], vals[i])
		} else {
			pvals[w] = append(pvals[w], uint64(i))
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for w := 0; w < n; w++ {
		if len(parts[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := s.shards[w]
			var encoded [][]byte
			if s.enc != nil {
				// EncodeAll is safe for concurrent use (read-only
				// dictionary, private appenders), so shards share the
				// template directly.
				encoded = s.enc.EncodeAll(parts[w])
			} else {
				encoded = copyAll(parts[w])
			}
			sh.mu.Lock()
			errs[w] = sh.be.bulk(encoded, pvals[w])
			sh.mu.Unlock()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardIdx maps an original key to its lock stripe via the partitioner.
// Routing the *original* bytes (not the encoding) keeps it independent of
// the dictionary, so a rebuilt encoder never re-partitions live data. This
// is the single routing function — point ops and Bulk partitioning must
// agree exactly.
func (s *ShardedIndex) shardIdx(key []byte) int {
	return s.part.Shard(key)
}

// shardHash is the shared routing hash: FNV-1a over the key bytes, high
// half folded in (FNV's low bits alone mix short keys poorly). Callers
// mask it to their power-of-two shard count; AdaptiveIndex relies on every
// generation with the same shard count routing a key identically.
func shardHash(key []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range key {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h ^ h>>32
}

// Len returns the number of stored keys (summed over shards; a moment's
// snapshot under concurrent writers).
func (s *ShardedIndex) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.be.length()
		sh.mu.RUnlock()
	}
	return n
}

// MemoryUsage returns the modeled footprint in bytes: all shard trees plus
// the shared dictionary once.
func (s *ShardedIndex) MemoryUsage() int {
	m := s.TreeMemoryUsage()
	if s.enc != nil {
		m += s.enc.MemoryUsage()
	}
	return m
}

// TreeMemoryUsage returns the shard trees' modeled footprint alone.
func (s *ShardedIndex) TreeMemoryUsage() int {
	m := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		m += sh.be.memory()
		sh.mu.RUnlock()
	}
	return m
}

// Scan visits, in ascending original-key order, every stored key k with
// lo <= k < hi (bounds in original key space; nil hi is unbounded) and
// returns how many keys it visited. fn receives the stored (encoded) key —
// valid only during the callback — and may stop the scan by returning
// false. See the type comment for the cross-shard consistency contract.
func (s *ShardedIndex) Scan(lo, hi []byte, fn func(key []byte, val uint64) bool) int {
	t := s.met.scan.Begin(0)
	var loEnc, hiEnc []byte
	if s.cenc != nil {
		loEnc = s.cenc.EncodeBound(lo)
		if loEnc == nil {
			loEnc = []byte{}
		}
		hiEnc = s.cenc.EncodeBound(hi)
	} else {
		loEnc, hiEnc = lo, hi
	}
	n := s.planScan(loEnc, hiEnc, false, fn)
	s.met.scan.End(t)
	return n
}

// ScanPrefix visits every stored key that starts with prefix, in ascending
// order, and returns how many keys it visited. Bound translation follows
// Index.ScanPrefix (exact lower bound, interval-ceiling upper bound).
func (s *ShardedIndex) ScanPrefix(prefix []byte, fn func(key []byte, val uint64) bool) int {
	t := s.met.scan.Begin(0)
	var n int
	if s.cenc != nil {
		maxLen := int(s.maxKeyLen.Load())
		if len(prefix) > maxLen {
			maxLen = len(prefix)
		}
		lo, hi := s.cenc.EncodePrefix(prefix, maxLen)
		n = s.planScan(lo, hi, true, fn)
	} else {
		hi := prefixSuccessor(prefix)
		n = s.planScan(prefix, hi, false, fn)
	}
	s.met.scan.End(t)
	return n
}

// planScan routes a translated (encoded-space) scan to the cheapest
// strategy the partition shape allows: a pruned sequential walk for
// ordered partitions — single-shard scans skip the merge machinery
// entirely — or the k-way merge for hash partitions.
func (s *ShardedIndex) planScan(lo, hi []byte, hiIncl bool, fn func(key []byte, val uint64) bool) int {
	if first, last, ok := s.scanSpan(lo, hi); ok {
		return s.orderedScan(first, last, lo, hi, hiIncl, fn)
	}
	return s.mergeScan(lo, hi, hiIncl, fn)
}

// scanSpan prunes an ordered partition to the inclusive shard span whose
// key intervals can overlap the encoded query bounds. Shard i's stored
// encodings lie within [encSplit[i-1], encSplit[i]] (closed: the
// zero-padding weak-order edge permits a stored key's encoding to equal a
// boundary's from either side), so the span conservatively includes any
// shard whose closed interval touches the bounds — never excluding a
// shard that could hold a match. ok is false for unordered (hash)
// partitions, which have no prunable structure.
func (s *ShardedIndex) scanSpan(lo, hi []byte) (first, last int, ok bool) {
	if !s.part.Ordered() {
		return 0, 0, false
	}
	last = len(s.shards) - 1
	es := s.encSplits.Load()
	if es == nil {
		if rp, isRange := s.part.(*RangePartitioner); isRange && !rp.seeded() {
			// No split points installed yet: every key lives in shard 0.
			return 0, 0, true
		}
		return 0, last, true
	}
	splits := *es
	if len(lo) > 0 {
		// First shard whose upper boundary is at or above lo; shards whose
		// entire interval encodes below lo cannot match.
		first = sort.Search(len(splits), func(i int) bool {
			return bytes.Compare(splits[i], lo) >= 0
		})
	}
	if hi != nil {
		// Last shard whose lower boundary is at or below hi (closed
		// comparison regardless of hi's inclusivity — a boundary-equal
		// shard is scanned and simply yields nothing when exclusive).
		last = sort.Search(len(splits), func(i int) bool {
			return bytes.Compare(splits[i], hi) > 0
		})
	}
	if first > last {
		first = last // degenerate bounds: scan one shard, find nothing
	}
	return first, last, true
}

// scanCursorPool recycles shardCursor shells (chunk arenas, resume
// buffers) across ordered scans, so the single-shard fast path performs
// zero allocations in steady state — no merge heap, no per-scan cursor.
var scanCursorPool = sync.Pool{New: func() any { return new(shardCursor) }}

// orderedScan drains shards first..last sequentially. Ordered disjoint
// shard intervals make interleaving impossible: everything in shard w
// precedes everything in shard w+1 in encoded (hence original) order, so
// the global order is the concatenation of per-shard orders and no merge
// or heap is needed. Each shard still drains in chunks under its read
// lock, exactly like the merge path's cursors.
func (s *ShardedIndex) orderedScan(first, last int, lo, hi []byte, hiIncl bool, fn func(key []byte, val uint64) bool) int {
	c := scanCursorPool.Get().(*shardCursor)
	count := 0
	for w := first; w <= last; w++ {
		c.reset(s.shards[w], w, lo, hi, hiIncl)
		for {
			k, ok := c.peek()
			if !ok {
				break
			}
			_, v := c.pop()
			count++
			if !fn(k, v) {
				c.release()
				return count
			}
		}
	}
	c.release()
	return count
}

// Shard-cursor chunk sizing: each lock acquisition drains one chunk. The
// first chunk is small — most range queries stop after a handful of
// results, and with S shards a scan pre-drains up to S chunks before the
// merge emits anything — then doubles per refill so long scans amortize
// the lock and resume cost. scanChunk caps the growth to bound writer
// latency impact and early-stop over-scan.
const (
	scanChunkInit = 8
	scanChunk     = 64
)

// shardCursor drains one shard's stored keys in [next, hi) (or [next, hi]
// when hiIncl) in chunks. Keys are copied into a reused arena so the
// cursor never retains tree memory across lock releases; the resume point
// after a chunk is lastKey+0x00, the smallest stored key strictly above
// lastKey in byte order.
type shardCursor struct {
	sh     *indexShard
	order  int    // shard index; deterministic tie-break in the merge heap
	next   []byte // inclusive resume bound (owned)
	hi     []byte // shared, read-only
	hiIncl bool

	arena []byte
	keys  [][]byte
	vals  []uint64
	i     int
	chunk int
	done  bool // underlying shard exhausted; current chunk is the last

	// collect is the fill callback, bound once per cursor lifetime (it
	// captures only the cursor) so pooled cursors refill without
	// allocating a fresh closure per chunk; nFill is its per-fill counter.
	collect func(k []byte, v uint64) bool
	nFill   int
}

// scanShard drains one shard's stored keys in [from, hi) (or [from, hi]
// when hiIncl; nil hi unbounded) in encoded order under the shard's read
// lock, until fn returns false. It is the per-shard migration hook behind
// AdaptiveIndex's cross-generation merge: the adaptive layer owns the
// chunking and resume bookkeeping (its cursors resolve stored values
// against the record store mid-drain), so this hook stays a single locked
// pass. Keys passed to fn alias tree memory and are only valid during the
// callback, which must not call back into the index.
func (s *ShardedIndex) scanShard(shard int, from, hi []byte, hiIncl bool, fn func(k []byte, v uint64) bool) {
	sh := s.shards[shard]
	sh.mu.RLock()
	sh.be.scan(from, hi, hiIncl, fn)
	sh.mu.RUnlock()
}

// reset re-aims a (possibly pooled) cursor at one shard's [lo, hi) span,
// keeping its arena and resume buffers for reuse.
func (c *shardCursor) reset(sh *indexShard, order int, lo, hi []byte, hiIncl bool) {
	c.sh, c.order = sh, order
	c.next = append(c.next[:0], lo...)
	c.hi, c.hiIncl = hi, hiIncl
	c.arena, c.keys, c.vals = c.arena[:0], c.keys[:0], c.vals[:0]
	c.i, c.chunk, c.done = 0, 0, false
}

// release drops live references and returns the cursor to the pool.
func (c *shardCursor) release() {
	c.sh, c.hi = nil, nil
	scanCursorPool.Put(c)
}

func (c *shardCursor) fill() {
	c.arena = c.arena[:0]
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	c.i = 0
	if c.done {
		return
	}
	if c.chunk == 0 {
		c.chunk = scanChunkInit
	}
	if c.collect == nil {
		c.collect = func(k []byte, v uint64) bool {
			start := len(c.arena)
			c.arena = append(c.arena, k...)
			c.keys = append(c.keys, c.arena[start:len(c.arena):len(c.arena)])
			c.vals = append(c.vals, v)
			c.nFill++
			return c.nFill < c.chunk
		}
	}
	c.nFill = 0
	c.sh.mu.RLock()
	c.sh.be.scan(c.next, c.hi, c.hiIncl, c.collect)
	c.sh.mu.RUnlock()
	n := c.nFill
	if n < c.chunk {
		c.done = true
		return
	}
	c.next = append(append(c.next[:0], c.keys[n-1]...), 0x00)
	if c.chunk < scanChunk {
		c.chunk *= 2
	}
}

// peek returns the cursor's current key, refilling from the shard when the
// chunk is consumed; ok is false when the shard is exhausted.
func (c *shardCursor) peek() (key []byte, ok bool) {
	if c.i >= len(c.keys) {
		if c.done {
			return nil, false
		}
		c.fill()
		if c.i >= len(c.keys) {
			return nil, false
		}
	}
	return c.keys[c.i], true
}

func (c *shardCursor) pop() (key []byte, val uint64) {
	key, val = c.keys[c.i], c.vals[c.i]
	c.i++
	return key, val
}

// mergeScan k-way-merges the per-shard encoded iterators over [lo, hi).
// Encoded byte order is original-key order (HOPE's invariant), so merging
// per-shard runs by encoded bytes yields the global ascending order
// regardless of how the hash scattered the keys. The cursors sit in a
// binary min-heap keyed by their current encoded key, so each emission
// costs O(log shards) comparisons rather than a linear sweep (at the
// 4×GOMAXPROCS default shard count of a large machine the difference is
// ~30× on the scan hot path).
func (s *ShardedIndex) mergeScan(lo, hi []byte, hiIncl bool, fn func(key []byte, val uint64) bool) int {
	heap := make([]*shardCursor, 0, len(s.shards))
	for order, sh := range s.shards {
		// Each cursor owns its resume buffer; lo's backing is shared and
		// must not be appended to.
		c := &shardCursor{sh: sh, order: order, next: append([]byte(nil), lo...), hi: hi, hiIncl: hiIncl}
		if _, ok := c.peek(); ok {
			heap = append(heap, c)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(heap, i, cursorLess)
	}
	count := 0
	for len(heap) > 0 {
		k, v := heap[0].pop()
		count++
		if !fn(k, v) {
			return count
		}
		if _, ok := heap[0].peek(); ok {
			siftDown(heap, 0, cursorLess)
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) > 0 {
				siftDown(heap, 0, cursorLess)
			}
		}
	}
	return count
}

// cursorLess orders heap cursors by current encoded key, breaking ties by
// shard order so the merge is deterministic when distinct originals share
// a padded encoding (the zero-padding edge). Both cursors must have a
// current item.
func cursorLess(a, b *shardCursor) bool {
	if c := bytes.Compare(a.keys[a.i], b.keys[b.i]); c != 0 {
		return c < 0
	}
	return a.order < b.order
}

// siftDown restores the min-heap property at index i for any cursor type;
// the ShardedIndex merge (cursorLess, encoded keys) and the AdaptiveIndex
// cross-generation merge (adaptiveCursorLess, original keys) share it.
func siftDown[C any](h []C, i int, less func(a, b C) bool) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && less(h[l], h[min]) {
			min = l
		}
		if r < len(h) && less(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
