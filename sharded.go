package hope

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// ShardedIndex is the concurrent serving layer over the compressed-index
// facade: N lock-striped shards, each wrapping one search tree
// (indexBackend) behind its own RWMutex, hash-partitioned on the original
// key bytes. The expensive build artifact — the HOPE dictionary — is built
// once and shared read-only by every shard; what is duplicated per shard
// is only the mutable point-encode state (an O(1) Encoder clone, see
// core.Encoder.Clone), so memory overhead versus a single Index is a few
// hundred bytes per shard, not a dictionary per shard.
//
// Concurrency model:
//
//   - Put/Get/Delete hash the original key to one shard. Writers take that
//     shard's exclusive lock; Get encodes outside any lock through a
//     pooled scratch buffer (core.ConcurrentEncoder) and holds only the
//     shard's read lock for the tree probe, so read-mostly workloads scale
//     with the shard count and Get is allocation-free in steady state.
//   - Scan/ScanPrefix translate bounds once (through the concurrent
//     encoder) and k-way-merge the per-shard encoded iterators: each shard
//     is drained in chunks under its read lock, and the merge interleaves
//     chunks by encoded-byte order, which is original-key order. A merged
//     scan is *per-shard* consistent, not a point-in-time snapshot across
//     shards: keys inserted or deleted while the scan runs may or may not
//     appear, exactly as in any lock-striped map.
//   - Bulk partitions the keys once by shard and loads all shards in
//     parallel, each shard running the bulk-encode pipeline over its
//     partition.
//
// The callback contract differs from Index in one respect: the stored
// (encoded) key passed to a scan callback is only valid for the duration
// of the callback (it lives in a reused merge buffer).
type ShardedIndex struct {
	backend Backend
	enc     *core.Encoder           // build-phase template; nil = uncompressed
	cenc    *core.ConcurrentEncoder // pooled encode state for the read path
	shards  []*indexShard
	mask    uint64

	// maxKeyLen tracks the longest original key ever stored (monotonic;
	// ScanPrefix feeds it to the encoder's interval-ceiling bound).
	maxKeyLen atomic.Int64

	scratch sync.Pool // *pointScratch; Get's zero-alloc encode buffers
}

// indexShard is one lock stripe: a search tree plus the shard-owned
// point-encode state. enc is guarded by mu (write lock) — it is the
// single-writer encoder used for Put's owned encodes, cloned from the
// shared template so all shards read one dictionary.
type indexShard struct {
	mu  sync.RWMutex
	be  indexBackend
	enc *core.Encoder // nil when uncompressed
}

// pointScratch is a pooled encode destination for the lock-free read path.
type pointScratch struct{ buf []byte }

// DefaultShards returns the default shard count: the smallest power of two
// at or above 4x GOMAXPROCS (striping beyond the parallelism level keeps
// hash collisions from serializing unrelated keys), clamped to [1, 256].
func DefaultShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n > 256 {
		n = 256
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewShardedIndex builds a concurrent index of nShards lock-striped shards
// (rounded up to a power of two; <= 0 selects DefaultShards) over the
// named backend. enc may be nil for an uncompressed index; otherwise it is
// the build-phase template: its read-only dictionary is shared by every
// shard and by the pooled read-path encoder, and the template must not be
// used directly afterwards (clone it first if independent use is needed).
func NewShardedIndex(backend Backend, enc *core.Encoder, nShards int) (*ShardedIndex, error) {
	if nShards <= 0 {
		nShards = DefaultShards()
	}
	nShards = ceilPow2(nShards)
	s := &ShardedIndex{
		backend: backend,
		enc:     enc,
		shards:  make([]*indexShard, nShards),
		mask:    uint64(nShards - 1),
	}
	if enc != nil {
		s.cenc = core.NewConcurrentEncoder(enc)
	}
	for i := range s.shards {
		be, err := newIndexBackend(backend)
		if err != nil {
			return nil, err
		}
		sh := &indexShard{be: be}
		if enc != nil {
			sh.enc = enc.Clone()
		}
		s.shards[i] = sh
	}
	s.scratch.New = func() any { return new(pointScratch) }
	return s, nil
}

// Backend returns the wrapped tree's name.
func (s *ShardedIndex) Backend() Backend { return s.backend }

// Encoder returns the shared build-phase encoder template (nil when
// uncompressed). It must not be used for point encodes while the index is
// serving; clone it first.
func (s *ShardedIndex) Encoder() *core.Encoder { return s.enc }

// NumShards returns the shard count (a power of two).
func (s *ShardedIndex) NumShards() int { return len(s.shards) }

func (s *ShardedIndex) trackLen(n int) {
	for {
		cur := s.maxKeyLen.Load()
		if int64(n) <= cur || s.maxKeyLen.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// Put inserts or overwrites one key. The owned encode (backends retain the
// stored key) runs on the shard's private encoder under the shard's write
// lock, so concurrent writers to different shards never share bit-buffer
// state.
func (s *ShardedIndex) Put(key []byte, val uint64) error {
	_, err := s.putShard(s.shardIdx(key), key, val)
	return err
}

// putShard is Put routed to a known shard, reporting the stored (encoded)
// key length — the per-shard migration hook AdaptiveIndex drives: the
// caller has already routed the original key (routing is
// dictionary-independent, so every generation agrees on the shard), and
// the returned length feeds the lifecycle tracker's rolling
// compression-rate estimate without a second encode.
func (s *ShardedIndex) putShard(shard int, key []byte, val uint64) (storedLen int, err error) {
	s.trackLen(len(key))
	sh := s.shards[shard]
	sh.mu.Lock()
	var ek []byte
	if sh.enc != nil {
		ek = sh.enc.Encode(key)
	} else {
		ek = append([]byte(nil), key...)
	}
	err = sh.be.insert(ek, val)
	sh.mu.Unlock()
	return len(ek), err
}

// Get returns the value stored under key. Zero allocations in steady
// state: the encode destination comes from a pool, the shard probe runs
// under a read lock, and the buffer returns to the pool afterwards.
func (s *ShardedIndex) Get(key []byte) (uint64, bool) {
	return s.getShard(s.shardIdx(key), key)
}

// getShard is Get routed to a known shard (see putShard).
func (s *ShardedIndex) getShard(shard int, key []byte) (uint64, bool) {
	sh := s.shards[shard]
	if s.cenc == nil {
		sh.mu.RLock()
		v, ok := sh.be.get(key)
		sh.mu.RUnlock()
		return v, ok
	}
	sc := s.scratch.Get().(*pointScratch)
	ek, _ := s.cenc.EncodeBits(sc.buf, key)
	sh.mu.RLock()
	v, ok := sh.be.get(ek)
	sh.mu.RUnlock()
	sc.buf = ek[:0]
	s.scratch.Put(sc)
	return v, ok
}

// Delete removes key, reporting whether it was present. Like Get it
// encodes through the pooled scratch (backends do not retain point-op
// buffers — see TestPointOpScratchNotRetained), but holds the shard's
// write lock for the tree mutation.
func (s *ShardedIndex) Delete(key []byte) (bool, error) {
	return s.deleteShard(s.shardIdx(key), key)
}

// deleteShard is Delete routed to a known shard (see putShard).
func (s *ShardedIndex) deleteShard(shard int, key []byte) (bool, error) {
	sh := s.shards[shard]
	if s.cenc == nil {
		sh.mu.Lock()
		ok, err := sh.be.remove(key)
		sh.mu.Unlock()
		return ok, err
	}
	sc := s.scratch.Get().(*pointScratch)
	ek, _ := s.cenc.EncodeBits(sc.buf, key)
	sh.mu.Lock()
	ok, err := sh.be.remove(ek)
	sh.mu.Unlock()
	sc.buf = ek[:0]
	s.scratch.Put(sc)
	return ok, err
}

// Bulk loads keys[i] -> vals[i]: the keys are partitioned once by shard
// hash, then every shard loads its partition in parallel, each running the
// parallel bulk-encode pipeline over its own slice of the shared
// dictionary. A nil vals assigns each key its position. For the SuRF
// backend this is the only way to populate the index (each shard builds
// its own filter over its partition).
func (s *ShardedIndex) Bulk(keys [][]byte, vals []uint64) error {
	if vals != nil && len(vals) != len(keys) {
		return fmt.Errorf("hope: %d keys but %d values", len(keys), len(vals))
	}
	n := len(s.shards)
	parts := make([][][]byte, n)
	pvals := make([][]uint64, n)
	// Pre-size from an even split; skew is bounded by the hash.
	for i := range parts {
		parts[i] = make([][]byte, 0, len(keys)/n+1)
		pvals[i] = make([]uint64, 0, len(keys)/n+1)
	}
	for i, k := range keys {
		s.trackLen(len(k))
		w := s.shardIdx(k)
		parts[w] = append(parts[w], k)
		if vals != nil {
			pvals[w] = append(pvals[w], vals[i])
		} else {
			pvals[w] = append(pvals[w], uint64(i))
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for w := 0; w < n; w++ {
		if len(parts[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sh := s.shards[w]
			var encoded [][]byte
			if s.enc != nil {
				// EncodeAll is safe for concurrent use (read-only
				// dictionary, private appenders), so shards share the
				// template directly.
				encoded = s.enc.EncodeAll(parts[w])
			} else {
				encoded = copyAll(parts[w])
			}
			sh.mu.Lock()
			errs[w] = sh.be.bulk(encoded, pvals[w])
			sh.mu.Unlock()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardIdx maps an original key to its lock stripe (see shardHash).
// Hashing the *original* bytes (not the encoding) keeps routing
// independent of the dictionary, so a rebuilt encoder never re-partitions
// live data. This is the single routing function — point ops, Bulk
// partitioning, and AdaptiveIndex's generation map must agree exactly.
func (s *ShardedIndex) shardIdx(key []byte) int {
	return int(shardHash(key) & s.mask)
}

// shardHash is the shared routing hash: FNV-1a over the key bytes, high
// half folded in (FNV's low bits alone mix short keys poorly). Callers
// mask it to their power-of-two shard count; AdaptiveIndex relies on every
// generation with the same shard count routing a key identically.
func shardHash(key []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, b := range key {
		h ^= uint64(b)
		h *= 0x100000001b3
	}
	return h ^ h>>32
}

// Len returns the number of stored keys (summed over shards; a moment's
// snapshot under concurrent writers).
func (s *ShardedIndex) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.be.length()
		sh.mu.RUnlock()
	}
	return n
}

// MemoryUsage returns the modeled footprint in bytes: all shard trees plus
// the shared dictionary once.
func (s *ShardedIndex) MemoryUsage() int {
	m := s.TreeMemoryUsage()
	if s.enc != nil {
		m += s.enc.MemoryUsage()
	}
	return m
}

// TreeMemoryUsage returns the shard trees' modeled footprint alone.
func (s *ShardedIndex) TreeMemoryUsage() int {
	m := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		m += sh.be.memory()
		sh.mu.RUnlock()
	}
	return m
}

// Scan visits, in ascending original-key order, every stored key k with
// lo <= k < hi (bounds in original key space; nil hi is unbounded) and
// returns how many keys it visited. fn receives the stored (encoded) key —
// valid only during the callback — and may stop the scan by returning
// false. See the type comment for the cross-shard consistency contract.
func (s *ShardedIndex) Scan(lo, hi []byte, fn func(key []byte, val uint64) bool) int {
	var loEnc, hiEnc []byte
	if s.cenc != nil {
		loEnc = s.cenc.EncodeBound(lo)
		if loEnc == nil {
			loEnc = []byte{}
		}
		hiEnc = s.cenc.EncodeBound(hi)
	} else {
		loEnc, hiEnc = lo, hi
	}
	return s.mergeScan(loEnc, hiEnc, false, fn)
}

// ScanPrefix visits every stored key that starts with prefix, in ascending
// order, and returns how many keys it visited. Bound translation follows
// Index.ScanPrefix (exact lower bound, interval-ceiling upper bound).
func (s *ShardedIndex) ScanPrefix(prefix []byte, fn func(key []byte, val uint64) bool) int {
	if s.cenc != nil {
		maxLen := int(s.maxKeyLen.Load())
		if len(prefix) > maxLen {
			maxLen = len(prefix)
		}
		lo, hi := s.cenc.EncodePrefix(prefix, maxLen)
		return s.mergeScan(lo, hi, true, fn)
	}
	hi := prefixSuccessor(prefix)
	return s.mergeScan(prefix, hi, false, fn)
}

// Shard-cursor chunk sizing: each lock acquisition drains one chunk. The
// first chunk is small — most range queries stop after a handful of
// results, and with S shards a scan pre-drains up to S chunks before the
// merge emits anything — then doubles per refill so long scans amortize
// the lock and resume cost. scanChunk caps the growth to bound writer
// latency impact and early-stop over-scan.
const (
	scanChunkInit = 8
	scanChunk     = 64
)

// shardCursor drains one shard's stored keys in [next, hi) (or [next, hi]
// when hiIncl) in chunks. Keys are copied into a reused arena so the
// cursor never retains tree memory across lock releases; the resume point
// after a chunk is lastKey+0x00, the smallest stored key strictly above
// lastKey in byte order.
type shardCursor struct {
	sh     *indexShard
	order  int    // shard index; deterministic tie-break in the merge heap
	next   []byte // inclusive resume bound (owned)
	hi     []byte // shared, read-only
	hiIncl bool

	arena []byte
	keys  [][]byte
	vals  []uint64
	i     int
	chunk int
	done  bool // underlying shard exhausted; current chunk is the last
}

// scanShard drains one shard's stored keys in [from, hi) (or [from, hi]
// when hiIncl; nil hi unbounded) in encoded order under the shard's read
// lock, until fn returns false. It is the per-shard migration hook behind
// AdaptiveIndex's cross-generation merge: the adaptive layer owns the
// chunking and resume bookkeeping (its cursors resolve stored values
// against the record store mid-drain), so this hook stays a single locked
// pass. Keys passed to fn alias tree memory and are only valid during the
// callback, which must not call back into the index.
func (s *ShardedIndex) scanShard(shard int, from, hi []byte, hiIncl bool, fn func(k []byte, v uint64) bool) {
	sh := s.shards[shard]
	sh.mu.RLock()
	sh.be.scan(from, hi, hiIncl, fn)
	sh.mu.RUnlock()
}

func (c *shardCursor) fill() {
	c.arena = c.arena[:0]
	c.keys = c.keys[:0]
	c.vals = c.vals[:0]
	c.i = 0
	if c.done {
		return
	}
	if c.chunk == 0 {
		c.chunk = scanChunkInit
	}
	n := 0
	c.sh.mu.RLock()
	c.sh.be.scan(c.next, c.hi, c.hiIncl, func(k []byte, v uint64) bool {
		start := len(c.arena)
		c.arena = append(c.arena, k...)
		c.keys = append(c.keys, c.arena[start:len(c.arena):len(c.arena)])
		c.vals = append(c.vals, v)
		n++
		return n < c.chunk
	})
	c.sh.mu.RUnlock()
	if n < c.chunk {
		c.done = true
		return
	}
	c.next = append(append(c.next[:0], c.keys[n-1]...), 0x00)
	if c.chunk < scanChunk {
		c.chunk *= 2
	}
}

// peek returns the cursor's current key, refilling from the shard when the
// chunk is consumed; ok is false when the shard is exhausted.
func (c *shardCursor) peek() (key []byte, ok bool) {
	if c.i >= len(c.keys) {
		if c.done {
			return nil, false
		}
		c.fill()
		if c.i >= len(c.keys) {
			return nil, false
		}
	}
	return c.keys[c.i], true
}

func (c *shardCursor) pop() (key []byte, val uint64) {
	key, val = c.keys[c.i], c.vals[c.i]
	c.i++
	return key, val
}

// mergeScan k-way-merges the per-shard encoded iterators over [lo, hi).
// Encoded byte order is original-key order (HOPE's invariant), so merging
// per-shard runs by encoded bytes yields the global ascending order
// regardless of how the hash scattered the keys. The cursors sit in a
// binary min-heap keyed by their current encoded key, so each emission
// costs O(log shards) comparisons rather than a linear sweep (at the
// 4×GOMAXPROCS default shard count of a large machine the difference is
// ~30× on the scan hot path).
func (s *ShardedIndex) mergeScan(lo, hi []byte, hiIncl bool, fn func(key []byte, val uint64) bool) int {
	heap := make([]*shardCursor, 0, len(s.shards))
	for order, sh := range s.shards {
		// Each cursor owns its resume buffer; lo's backing is shared and
		// must not be appended to.
		c := &shardCursor{sh: sh, order: order, next: append([]byte(nil), lo...), hi: hi, hiIncl: hiIncl}
		if _, ok := c.peek(); ok {
			heap = append(heap, c)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(heap, i, cursorLess)
	}
	count := 0
	for len(heap) > 0 {
		k, v := heap[0].pop()
		count++
		if !fn(k, v) {
			return count
		}
		if _, ok := heap[0].peek(); ok {
			siftDown(heap, 0, cursorLess)
		} else {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
			if len(heap) > 0 {
				siftDown(heap, 0, cursorLess)
			}
		}
	}
	return count
}

// cursorLess orders heap cursors by current encoded key, breaking ties by
// shard order so the merge is deterministic when distinct originals share
// a padded encoding (the zero-padding edge). Both cursors must have a
// current item.
func cursorLess(a, b *shardCursor) bool {
	if c := bytes.Compare(a.keys[a.i], b.keys[b.i]); c != 0 {
		return c < 0
	}
	return a.order < b.order
}

// siftDown restores the min-heap property at index i for any cursor type;
// the ShardedIndex merge (cursorLess, encoded keys) and the AdaptiveIndex
// cross-generation merge (adaptiveCursorLess, original keys) share it.
func siftDown[C any](h []C, i int, less func(a, b C) bool) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && less(h[l], h[min]) {
			min = l
		}
		if r < len(h) && less(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}
