package hope

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

// loadRangeSharded builds a range-partitioned index over the corpus (split
// points sampled from the corpus itself) with val i for key i.
func loadRangeSharded(t *testing.T, backend Backend, enc *core.Encoder, nShards int, keys [][]byte) *ShardedIndex {
	t.Helper()
	s, err := NewRangeShardedIndex(backend, enc, nShards, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bulk(keys, nil); err != nil {
		t.Fatalf("%s: bulk: %v", backend, err)
	}
	return s
}

// TestRangePartitionerUnits pins the routing arithmetic: boundary keys go
// to the right of their split, duplicates make empty shards, unseeded
// partitioners route everything to shard 0, and RangeSplits is
// deterministic and ordered.
func TestRangePartitionerUnits(t *testing.T) {
	p := NewRangePartitioner([][]byte{[]byte("b"), []byte("m"), []byte("m"), []byte("t")})
	if p.NumShards() != 5 || !p.Ordered() {
		t.Fatalf("NumShards=%d Ordered=%v", p.NumShards(), p.Ordered())
	}
	cases := []struct {
		key  string
		want int
	}{
		{"", 0}, {"a", 0}, {"azzz", 0},
		{"b", 1}, {"c", 1}, {"lzz", 1},
		{"m", 3}, {"n", 3}, {"szz", 3}, // shard 2 is empty: duplicate split "m"
		{"t", 4}, {"zzz", 4},
	}
	for _, c := range cases {
		if got := p.Shard([]byte(c.key)); got != c.want {
			t.Fatalf("Shard(%q) = %d, want %d", c.key, got, c.want)
		}
	}

	u := NewUnseededRangePartitioner(8)
	if u.NumShards() != 8 || u.Shard([]byte("anything")) != 0 || u.Splits() != nil {
		t.Fatal("unseeded partitioner must route everything to shard 0")
	}

	corpus := adversarialCorpus()
	s1 := RangeSplits(corpus, 8, 1)
	s2 := RangeSplits(corpus, 8, 1)
	if len(s1) != 7 {
		t.Fatalf("RangeSplits returned %d splits, want 7", len(s1))
	}
	for i := range s1 {
		if !bytes.Equal(s1[i], s2[i]) {
			t.Fatal("RangeSplits not deterministic for a fixed seed")
		}
		if i > 0 && bytes.Compare(s1[i-1], s1[i]) > 0 {
			t.Fatal("RangeSplits not ascending")
		}
	}
	if RangeSplits(corpus, 1, 1) != nil || RangeSplits(nil, 8, 1) != nil {
		t.Fatal("degenerate RangeSplits must be nil")
	}
}

// TestRangeShardedScanDifferential is the tentpole's acceptance test: on
// every backend × scheme, a range-partitioned ShardedIndex returns exactly
// the vals (hence byte-identical keys, in the same order) a hash-
// partitioned one and a single hope.Index return, across the adversarial
// corpus and bound sweep — proving the pruned sequential scan planner
// reconstructs the same global order the k-way merge and the single tree
// produce.
func TestRangeShardedScanDifferential(t *testing.T) {
	keys := adversarialCorpus()
	bounds := scanBounds()
	for _, backend := range Backends {
		for _, enc := range shardedSchemes(t) {
			var refEnc, hashEnc *core.Encoder
			if enc != nil {
				refEnc = enc.Clone()
				hashEnc = enc.Clone()
			}
			ref := loadIndex(t, backend, refEnc, keys)
			hash := loadSharded(t, backend, hashEnc, 8, keys)
			ranged := loadRangeSharded(t, backend, enc, 8, keys)
			if ref.Len() != ranged.Len() {
				t.Fatalf("%s/%s: Index holds %d keys, range ShardedIndex %d",
					backend, schemeName(enc), ref.Len(), ranged.Len())
			}
			pairs := [][2][]byte{{nil, nil}}
			for _, b := range bounds {
				pairs = append(pairs, [2][]byte{b, nil}, [2][]byte{nil, b})
			}
			for _, lo := range bounds {
				for _, hi := range bounds {
					pairs = append(pairs, [2][]byte{lo, hi})
				}
			}
			for _, p := range pairs {
				want := collectScan(ref, p[0], p[1])
				var gotHash, gotRange []uint64
				hash.Scan(p[0], p[1], func(_ []byte, v uint64) bool {
					gotHash = append(gotHash, v)
					return true
				})
				ranged.Scan(p[0], p[1], func(_ []byte, v uint64) bool {
					gotRange = append(gotRange, v)
					return true
				})
				if !equalU64(want, gotRange) || !equalU64(want, gotHash) {
					t.Fatalf("%s/%s: Scan(%q, %q): Index %v, hash %v, range %v",
						backend, schemeName(enc), p[0], p[1], want, gotHash, gotRange)
				}
			}
		}
	}
}

// TestRangeShardedScanPrefixDifferential: prefix scans through the pruned
// planner match the single-Index reference on every backend × scheme.
func TestRangeShardedScanPrefixDifferential(t *testing.T) {
	keys := adversarialCorpus()
	prefixes := [][]byte{
		{}, []byte("a"), []byte("ap"), []byte("app"), []byte("apple"),
		[]byte("com."), []byte("com.gmail@"), []byte("com.gmail@bob"),
		{0x00}, {0xff}, {0xff, 0xff}, []byte("a\xff"), []byte("a\xff\xff"),
		[]byte("nosuchprefix"), []byte("z"),
	}
	for _, backend := range Backends {
		for _, enc := range shardedSchemes(t) {
			var refEnc *core.Encoder
			if enc != nil {
				refEnc = enc.Clone()
			}
			ref := loadIndex(t, backend, refEnc, keys)
			ranged := loadRangeSharded(t, backend, enc, 8, keys)
			for _, p := range prefixes {
				var want, got []uint64
				ref.ScanPrefix(p, func(_ []byte, v uint64) bool {
					want = append(want, v)
					return true
				})
				ranged.ScanPrefix(p, func(_ []byte, v uint64) bool {
					got = append(got, v)
					return true
				})
				if !equalU64(want, got) {
					t.Fatalf("%s/%s: ScanPrefix(%q): Index %v != range ShardedIndex %v",
						backend, schemeName(enc), p, want, got)
				}
			}
		}
	}
}

// TestRangeShardedPointOpsDifferential drives the same Put/Get/Delete
// sequence through a range-partitioned ShardedIndex and a model map.
func TestRangeShardedPointOpsDifferential(t *testing.T) {
	keys := adversarialCorpus()
	probes := append(append([][]byte{}, keys...),
		[]byte("absent"), []byte("apples"), []byte("a\xffa"), []byte("zzzzz"), []byte{0x02})
	for _, backend := range []Backend{ART, HOT, BTree, PrefixBTree} {
		for _, enc := range shardedSchemes(t) {
			s, err := NewRangeShardedIndex(backend, enc, 8, keys)
			if err != nil {
				t.Fatal(err)
			}
			model := map[string]uint64{}
			for i, k := range keys {
				if err := s.Put(k, uint64(i)); err != nil {
					t.Fatalf("%s/%s: Put(%q): %v", backend, schemeName(enc), k, err)
				}
				model[string(k)] = uint64(i)
			}
			for i := 0; i < len(keys); i += 7 {
				if err := s.Put(keys[i], uint64(i)+1000); err != nil {
					t.Fatal(err)
				}
				model[string(keys[i])] = uint64(i) + 1000
			}
			for i := 0; i < len(keys); i += 5 {
				_, present := model[string(keys[i])]
				delete(model, string(keys[i]))
				ok, err := s.Delete(keys[i])
				if err != nil {
					t.Fatal(err)
				}
				if ok != present {
					t.Fatalf("%s/%s: Delete(%q) = %v want %v",
						backend, schemeName(enc), keys[i], ok, present)
				}
			}
			if s.Len() != len(model) {
				t.Fatalf("%s/%s: Len = %d want %d", backend, schemeName(enc), s.Len(), len(model))
			}
			for _, k := range probes {
				wantV, wantOK := model[string(k)]
				gotV, gotOK := s.Get(k)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					t.Fatalf("%s/%s: Get(%q) = %d,%v want %d,%v",
						backend, schemeName(enc), k, gotV, gotOK, wantV, wantOK)
				}
			}
		}
	}
}

// TestRangeShardedSkewedSplits: adversarial split points — all keys in one
// shard, empty shards from duplicate splits, splits outside the key
// population — must not change any scan or point result.
func TestRangeShardedSkewedSplits(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	splitSets := map[string][][]byte{
		"all-in-last":  {{0x00}, {0x00, 0x00}, {0x00, 0x00, 0x00}},
		"all-in-first": {[]byte("\xff\xff\xff\xff\xff"), []byte("\xff\xff\xff\xff\xff\x01"), []byte("\xff\xff\xff\xff\xff\x02")},
		"empty-middle": {[]byte("com."), []byte("com."), []byte("com."), []byte("org.")},
		"two-hot":      {[]byte("b"), []byte("com.zz"), []byte("org.zz")},
	}
	for name, splits := range splitSets {
		for _, enc := range []*core.Encoder{nil, encs[core.DoubleChar]} {
			ref := loadIndex(t, BTree, encCloneOrNil(enc), keys)
			s, err := NewShardedIndexWithPartitioner(BTree, encCloneOrNil(enc), NewRangePartitioner(splits))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Bulk(keys, nil); err != nil {
				t.Fatal(err)
			}
			if got, want := s.Len(), ref.Len(); got != want {
				t.Fatalf("%s: Len = %d want %d", name, got, want)
			}
			lens := s.ShardLens()
			total := 0
			for _, n := range lens {
				total += n
			}
			if total != ref.Len() {
				t.Fatalf("%s: shard lens %v sum to %d, want %d", name, lens, total, ref.Len())
			}
			for _, lo := range scanBounds() {
				want := collectScan(ref, lo, nil)
				var got []uint64
				s.Scan(lo, nil, func(_ []byte, v uint64) bool {
					got = append(got, v)
					return true
				})
				if !equalU64(want, got) {
					t.Fatalf("%s/%s: Scan(%q, nil): want %v got %v",
						name, schemeName(enc), lo, want, got)
				}
			}
			for i, k := range keys {
				if v, ok := s.Get(k); !ok || v != uint64(i) {
					t.Fatalf("%s: Get(%q) = %d,%v want %d,true", name, k, v, ok, i)
				}
			}
		}
	}
}

func encCloneOrNil(enc *core.Encoder) *core.Encoder {
	if enc == nil {
		return nil
	}
	return enc.Clone()
}

// TestRangeShardedBulkSeedsSplits: a Bulk into an empty unseeded
// range-partitioned index must sample split points from its corpus and
// spread the load — and a second Bulk must not re-seed (stored keys would
// be re-routed).
func TestRangeShardedBulkSeedsSplits(t *testing.T) {
	keys := make([][]byte, 0, 2000)
	for i := 0; i < 2000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("com.user@%05d", i*7)))
	}
	s, err := NewRangeShardedIndex(BTree, nil, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	rp := s.Partitioner().(*RangePartitioner)
	if rp.seeded() {
		t.Fatal("partitioner seeded before any corpus")
	}
	if err := s.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	if !rp.seeded() {
		t.Fatal("Bulk did not seed the partitioner")
	}
	splits := append([][]byte(nil), rp.Splits()...)
	lens := s.ShardLens()
	for i, n := range lens {
		// Quantile splits over a uniform corpus: every shard within 3x of
		// the even share.
		if n > 3*len(keys)/len(lens)+1 {
			t.Fatalf("shard %d holds %d of %d keys: splits not balanced (%v)", i, n, len(keys), lens)
		}
	}
	// Second bulk into the now-populated index: splits must be unchanged.
	more := [][]byte{[]byte("aaa"), []byte("zzz")}
	if err := s.Bulk(more, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	for i, sp := range rp.Splits() {
		if !bytes.Equal(sp, splits[i]) {
			t.Fatal("second Bulk re-seeded the partitioner")
		}
	}
	if v, ok := s.Get([]byte("aaa")); !ok || v != 1 {
		t.Fatalf("Get(aaa) = %d,%v", v, ok)
	}
}

// TestRangeShardedEarlyStop: early-stopping callbacks through the
// sequential ordered path match the single-Index scan and count.
func TestRangeShardedEarlyStop(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	for _, backend := range Backends {
		ref := loadIndex(t, backend, encs[core.DoubleChar].Clone(), keys)
		ranged := loadRangeSharded(t, backend, encs[core.DoubleChar], 8, keys)
		for _, limit := range []int{0, 1, 3, 10, scanChunk, scanChunk + 5} {
			take := func(scan func(lo, hi []byte, fn func([]byte, uint64) bool) int) ([]uint64, int) {
				var out []uint64
				n := scan([]byte("a"), nil, func(_ []byte, v uint64) bool {
					out = append(out, v)
					return len(out) < limit
				})
				return out, n
			}
			want, wantN := take(ref.Scan)
			got, gotN := take(ranged.Scan)
			if !equalU64(want, got) || wantN != gotN {
				t.Fatalf("%s limit %d: Index %v (n=%d) != range %v (n=%d)",
					backend, limit, want, wantN, got, gotN)
			}
		}
	}
}

// TestSingleShardScanZeroAlloc is the acceptance criterion's allocation
// bar for the fast path: a short scan confined to one shard of a
// range-partitioned index builds no merge heap and allocates nothing —
// the cursor, its chunk arena, and its resume buffer all come from the
// scan cursor pool. (Uncompressed, so bound translation — which
// necessarily allocates its encoded bounds — is out of the picture; the
// compressed path differs only by that translation.)
func TestSingleShardScanZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; zero-alloc steady state not reachable")
	}
	keys := make([][]byte, 0, 4096)
	for i := 0; i < 4096; i++ {
		keys = append(keys, []byte(fmt.Sprintf("com.user@%05d", i)))
	}
	s, err := NewRangeShardedIndex(BTree, nil, 16, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	lo := []byte("com.user@02000")
	run := func() {
		n := 0
		s.Scan(lo, nil, func(_ []byte, _ uint64) bool {
			n++
			return n < 50
		})
	}
	run() // warm the cursor pool
	allocs := testing.AllocsPerRun(2000, run)
	if allocs >= 0.5 {
		t.Fatalf("single-shard scan allocates %.2f/op in steady state, want 0", allocs)
	}
}

// TestRangeShardedScanUnderChurn hammers the pruned scan planner with
// concurrent writers (the -race leg for the ordered sequential path): the
// stable key population must appear exactly once, in order, in every
// scan, while churn keys come and go — including churn landing exactly on
// shard boundaries.
func TestRangeShardedScanUnderChurn(t *testing.T) {
	base := adversarialCorpus()
	encs := testEncoders(t)
	s, err := NewRangeShardedIndex(BTree, encs[core.DoubleChar], 8, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bulk(base, nil); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn a disjoint namespace while scans run
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		splits := s.Partitioner().Splits()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var k []byte
			if i%5 == 0 && len(splits) > 0 {
				// Churn on a shard boundary: the split point key itself.
				k = append([]byte(nil), splits[rng.Intn(len(splits))]...)
			} else {
				k = []byte(fmt.Sprintf("net.churn@%d", rng.Intn(100)))
			}
			if i%3 == 0 {
				s.Delete(k)
			} else {
				s.Put(k, uint64(i)+(1<<32))
			}
		}
	}()
	stable := map[uint64]bool{}
	for i := range base {
		stable[uint64(i)] = true
	}
	for iter := 0; iter < 30; iter++ {
		seen := map[uint64]int{}
		var last []byte
		s.Scan(nil, nil, func(k []byte, v uint64) bool {
			if last != nil && bytes.Compare(last, k) > 0 {
				t.Errorf("scan out of order")
				return false
			}
			last = append(last[:0], k...)
			seen[v]++
			return true
		})
		for v := range stable {
			if seen[v] != 1 {
				t.Fatalf("iter %d: stable val %d seen %d times", iter, v, seen[v])
			}
		}
		// Short pruned scans under the same churn.
		n := 0
		s.Scan([]byte("com."), nil, func(_ []byte, _ uint64) bool {
			n++
			return n < 20
		})
	}
	close(stop)
	wg.Wait()
}

// TestScanSpanPruning pins the planner's span arithmetic: the span always
// covers the shards holding matching keys, and a short bounded scan over
// a seeded partition prunes to a strict subset of the shards.
func TestScanSpanPruning(t *testing.T) {
	keys := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%06d", i)))
	}
	s, err := NewRangeShardedIndex(BTree, nil, 8, keys)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	first, last, ok := s.scanSpan([]byte("k000100"), []byte("k000120"))
	if !ok {
		t.Fatal("range partition must report an ordered span")
	}
	if last-first >= 7 {
		t.Fatalf("span [%d,%d] over 8 shards: no pruning for a 20-key window", first, last)
	}
	// The span must agree with the partitioner about every stored key in
	// range.
	for _, k := range keys {
		if string(k) >= "k000100" && string(k) < "k000120" {
			w := s.Partitioner().Shard(k)
			if w < first || w > last {
				t.Fatalf("key %q in shard %d outside span [%d,%d]", k, w, first, last)
			}
		}
	}
	// Unbounded scans span everything relevant and stay exact.
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	i := 0
	s.Scan(nil, nil, func(_ []byte, v uint64) bool {
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("full scan visited %d of %d keys", i, len(keys))
	}
}
