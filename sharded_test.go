package hope

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// loadSharded builds a sharded index over the corpus with val i for key i.
func loadSharded(t *testing.T, backend Backend, enc *core.Encoder, nShards int, keys [][]byte) *ShardedIndex {
	t.Helper()
	s, err := NewShardedIndex(backend, enc, nShards)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bulk(keys, nil); err != nil {
		t.Fatalf("%s: bulk: %v", backend, err)
	}
	return s
}

// shardedSchemes covers nil (uncompressed) plus every tested scheme; the
// acceptance bar is identity with a single Index on all of them.
func shardedSchemes(t *testing.T) []*core.Encoder {
	encs := testEncoders(t)
	out := []*core.Encoder{nil}
	for _, s := range testSchemes {
		out = append(out, encs[s])
	}
	return out
}

func schemeName(enc *core.Encoder) string {
	if enc == nil {
		return "Uncompressed"
	}
	return enc.Scheme().String()
}

// TestShardedScanDifferential is the tentpole's acceptance test: on every
// backend × scheme, ShardedIndex.Scan returns exactly the vals (hence
// byte-identical original keys, in the same order) a single hope.Index
// returns, across the adversarial corpus and bound sweep — proving the
// k-way shard merge reconstructs the global encoded order.
func TestShardedScanDifferential(t *testing.T) {
	keys := adversarialCorpus()
	bounds := scanBounds()
	for _, backend := range Backends {
		for _, enc := range shardedSchemes(t) {
			// The encoder template is shared between the reference Index
			// and the sharded one: clone for the single-writer reference.
			var refEnc *core.Encoder
			if enc != nil {
				refEnc = enc.Clone()
			}
			ref := loadIndex(t, backend, refEnc, keys)
			sharded := loadSharded(t, backend, enc, 8, keys)
			if ref.Len() != sharded.Len() {
				t.Fatalf("%s/%s: Index holds %d keys, ShardedIndex %d",
					backend, schemeName(enc), ref.Len(), sharded.Len())
			}
			pairs := [][2][]byte{{nil, nil}}
			for _, b := range bounds {
				pairs = append(pairs, [2][]byte{b, nil}, [2][]byte{nil, b})
			}
			for _, lo := range bounds {
				for _, hi := range bounds {
					pairs = append(pairs, [2][]byte{lo, hi})
				}
			}
			for _, p := range pairs {
				want := collectScan(ref, p[0], p[1])
				var got []uint64
				sharded.Scan(p[0], p[1], func(_ []byte, v uint64) bool {
					got = append(got, v)
					return true
				})
				if !equalU64(want, got) {
					t.Fatalf("%s/%s: Scan(%q, %q): Index %v != ShardedIndex %v",
						backend, schemeName(enc), p[0], p[1], want, got)
				}
			}
		}
	}
}

// TestShardedScanPrefixDifferential: prefix scans through the merged
// interval-ceiling bounds match the single-Index reference.
func TestShardedScanPrefixDifferential(t *testing.T) {
	keys := adversarialCorpus()
	prefixes := [][]byte{
		{}, []byte("a"), []byte("ap"), []byte("app"), []byte("apple"),
		[]byte("com."), []byte("com.gmail@"), []byte("com.gmail@bob"),
		{0x00}, {0xff}, {0xff, 0xff}, []byte("a\xff"), []byte("a\xff\xff"),
		[]byte("nosuchprefix"), []byte("z"),
	}
	for _, backend := range Backends {
		for _, enc := range shardedSchemes(t) {
			var refEnc *core.Encoder
			if enc != nil {
				refEnc = enc.Clone()
			}
			ref := loadIndex(t, backend, refEnc, keys)
			sharded := loadSharded(t, backend, enc, 8, keys)
			for _, p := range prefixes {
				var want, got []uint64
				ref.ScanPrefix(p, func(_ []byte, v uint64) bool {
					want = append(want, v)
					return true
				})
				sharded.ScanPrefix(p, func(_ []byte, v uint64) bool {
					got = append(got, v)
					return true
				})
				if !equalU64(want, got) {
					t.Fatalf("%s/%s: ScanPrefix(%q): Index %v != ShardedIndex %v",
						backend, schemeName(enc), p, want, got)
				}
			}
		}
	}
}

// TestShardedEarlyStop: a callback returning false stops the merged scan
// after the same results as the single-Index scan, and the chunked shard
// cursors do not over-report the visit count.
func TestShardedEarlyStop(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	for _, backend := range Backends {
		ref := loadIndex(t, backend, encs[core.DoubleChar].Clone(), keys)
		sharded := loadSharded(t, backend, encs[core.DoubleChar], 8, keys)
		for _, limit := range []int{0, 1, 3, 10, scanChunk, scanChunk + 5} {
			take := func(scan func(lo, hi []byte, fn func([]byte, uint64) bool) int) ([]uint64, int) {
				var out []uint64
				n := scan([]byte("a"), nil, func(_ []byte, v uint64) bool {
					out = append(out, v)
					return len(out) < limit
				})
				return out, n
			}
			want, wantN := take(ref.Scan)
			got, gotN := take(sharded.Scan)
			if !equalU64(want, got) || wantN != gotN {
				t.Fatalf("%s limit %d: Index %v (n=%d) != ShardedIndex %v (n=%d)",
					backend, limit, want, wantN, got, gotN)
			}
		}
	}
}

// TestShardedPointOpsDifferential drives the same Put/Get/Delete sequence
// through a ShardedIndex and a model map, mirroring the single-Index
// point-op differential.
func TestShardedPointOpsDifferential(t *testing.T) {
	keys := adversarialCorpus()
	probes := append(append([][]byte{}, keys...),
		[]byte("absent"), []byte("apples"), []byte("a\xffa"), []byte("zzzzz"), []byte{0x02})
	for _, backend := range Backends {
		for _, enc := range shardedSchemes(t) {
			if backend == SuRF {
				s := loadSharded(t, backend, enc, 4, keys)
				if err := s.Put([]byte("k"), 1); err != ErrImmutableBackend {
					t.Fatalf("SuRF Put: got %v, want ErrImmutableBackend", err)
				}
				if _, err := s.Delete(keys[1]); err != ErrImmutableBackend {
					t.Fatalf("SuRF Delete: got %v, want ErrImmutableBackend", err)
				}
				for i, k := range keys {
					if v, ok := s.Get(k); !ok || v != uint64(i) {
						t.Fatalf("SuRF/%s: Get(%q) = %d,%v want %d,true",
							schemeName(enc), k, v, ok, i)
					}
				}
				continue
			}
			s, err := NewShardedIndex(backend, enc, 8)
			if err != nil {
				t.Fatal(err)
			}
			model := map[string]uint64{}
			for i, k := range keys {
				if err := s.Put(k, uint64(i)); err != nil {
					t.Fatalf("%s/%s: Put(%q): %v", backend, schemeName(enc), k, err)
				}
				model[string(k)] = uint64(i)
			}
			for i := 0; i < len(keys); i += 7 {
				if err := s.Put(keys[i], uint64(i)+1000); err != nil {
					t.Fatal(err)
				}
				model[string(keys[i])] = uint64(i) + 1000
			}
			for i := 0; i < len(keys); i += 5 {
				_, present := model[string(keys[i])]
				delete(model, string(keys[i]))
				ok, err := s.Delete(keys[i])
				if err != nil {
					t.Fatal(err)
				}
				if ok != present {
					t.Fatalf("%s/%s: Delete(%q) = %v want %v",
						backend, schemeName(enc), keys[i], ok, present)
				}
			}
			if s.Len() != len(model) {
				t.Fatalf("%s/%s: Len = %d want %d", backend, schemeName(enc), s.Len(), len(model))
			}
			for _, k := range probes {
				wantV, wantOK := model[string(k)]
				gotV, gotOK := s.Get(k)
				if gotOK != wantOK || (wantOK && gotV != wantV) {
					t.Fatalf("%s/%s: Get(%q) = %d,%v want %d,%v",
						backend, schemeName(enc), k, gotV, gotOK, wantV, wantOK)
				}
			}
		}
	}
}

// TestShardedBasics covers construction plumbing: shard-count rounding,
// unknown backends, vals validation, memory accounting (dictionary counted
// once, not per shard).
func TestShardedBasics(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	if _, err := NewShardedIndex(Backend("T-tree"), nil, 4); err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, in := range []int{0, 1, 3, 4, 5, 8, 100} {
		s, err := NewShardedIndex(BTree, nil, in)
		if err != nil {
			t.Fatal(err)
		}
		n := s.NumShards()
		if n&(n-1) != 0 || (in > 0 && n < in) {
			t.Fatalf("NumShards(%d) = %d: not a covering power of two", in, n)
		}
	}
	s, err := NewShardedIndex(BTree, encs[core.DoubleChar], 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bulk(keys, make([]uint64, 1)); err == nil {
		t.Fatal("mismatched vals length accepted")
	}
	if err := s.Bulk(keys, nil); err != nil {
		t.Fatal(err)
	}
	if s.Backend() != BTree || s.Encoder() == nil {
		t.Fatal("accessors broken")
	}
	// The dictionary must be counted once: total minus trees equals the
	// template encoder's footprint exactly.
	if got, want := s.MemoryUsage()-s.TreeMemoryUsage(), s.Encoder().MemoryUsage(); got != want {
		t.Fatalf("dictionary accounted %d bytes, want %d (shared once)", got, want)
	}
	// Explicit vals round-trip.
	s2, _ := NewShardedIndex(ART, nil, 4)
	vals := make([]uint64, len(keys))
	for i := range vals {
		vals[i] = uint64(i * 3)
	}
	if err := s2.Bulk(keys, vals); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if v, ok := s2.Get(k); !ok || v != uint64(i*3) {
			t.Fatalf("Get(%q) = %d,%v want %d,true", k, v, ok, i*3)
		}
	}
}

// TestShardedGetZeroAlloc is the acceptance criterion's allocation bar:
// steady-state Get performs zero allocations per op — the encode runs
// through pooled scratch and the probe under a read lock.
func TestShardedGetZeroAlloc(t *testing.T) {
	keys := adversarialCorpus()
	encs := testEncoders(t)
	for _, enc := range []*core.Encoder{nil, encs[core.SingleChar], encs[core.DoubleChar]} {
		s := loadSharded(t, ART, enc, 8, keys)
		// Warm the scratch and appender pools.
		for _, k := range keys {
			s.Get(k)
		}
		i := 0
		allocs := testing.AllocsPerRun(2000, func() {
			s.Get(keys[i%len(keys)])
			i++
		})
		// A GC during the run can empty the pools and cost a refill; with
		// 2000 runs that amortizes far below one — anything at or above 1
		// alloc/op means the steady state allocates.
		if allocs >= 0.5 {
			t.Fatalf("%s: ShardedIndex.Get allocates %.2f/op in steady state, want 0",
				schemeName(enc), allocs)
		}
	}
}

// TestShardedIndexStress hammers one ShardedIndex with mixed Put/Get/
// Delete/Scan/ScanPrefix from 8 goroutines — the race-detector leg of the
// concurrency model. Each goroutine owns a private key namespace it
// verifies exactly, while shared bulk-loaded keys serve read and scan
// traffic from all goroutines at once.
func TestShardedIndexStress(t *testing.T) {
	const (
		goroutines = 8
		opsPerG    = 400
	)
	base := adversarialCorpus()
	encs := testEncoders(t)
	for _, backend := range []Backend{ART, BTree} {
		s := loadSharded(t, backend, encs[core.SingleChar], 16, base)
		var inFlight atomic.Int64
		var wg sync.WaitGroup
		errc := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				mine := map[string]uint64{}
				for i := 0; i < opsPerG; i++ {
					switch rng.Intn(10) {
					case 0, 1, 2: // insert/overwrite an owned key
						k := fmt.Sprintf("com.stress@g%d-%d", g, rng.Intn(50))
						v := uint64(rng.Intn(1 << 20))
						if err := s.Put([]byte(k), v); err != nil {
							errc <- err
							return
						}
						mine[k] = v
						inFlight.Add(1)
					case 3: // delete an owned key
						k := fmt.Sprintf("com.stress@g%d-%d", g, rng.Intn(50))
						_, present := mine[k]
						ok, err := s.Delete([]byte(k))
						if err != nil {
							errc <- err
							return
						}
						if ok != present {
							errc <- fmt.Errorf("g%d: Delete(%s) = %v want %v", g, k, ok, present)
							return
						}
						delete(mine, k)
					case 4, 5, 6: // verify an owned or shared key
						if len(mine) > 0 && rng.Intn(2) == 0 {
							for k, want := range mine {
								got, ok := s.Get([]byte(k))
								if !ok || got != want {
									errc <- fmt.Errorf("g%d: Get(%s) = %d,%v want %d,true", g, k, got, ok, want)
									return
								}
								break
							}
						} else {
							k := base[rng.Intn(len(base))]
							s.Get(k)
						}
					case 7, 8: // bounded range scan
						n := 0
						s.Scan([]byte("com."), nil, func(_ []byte, _ uint64) bool {
							n++
							return n < 20
						})
					default: // prefix scan over the contended namespace
						n := 0
						s.ScanPrefix([]byte("com.stress@"), func(_ []byte, _ uint64) bool {
							n++
							return n < 20
						})
					}
				}
				errc <- nil
			}(g)
		}
		wg.Wait()
		for g := 0; g < goroutines; g++ {
			if err := <-errc; err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
		}
		if s.Len() < len(base) {
			t.Fatalf("%s: shared keys lost: Len = %d < %d", backend, s.Len(), len(base))
		}
	}
}

// TestShardedScanSeesConcurrentConsistency: a merged scan under concurrent
// writers must still return every key that was present for the whole scan,
// in order, without duplicates — the per-shard consistency contract.
func TestShardedScanSeesConcurrentConsistency(t *testing.T) {
	base := adversarialCorpus()
	encs := testEncoders(t)
	s := loadSharded(t, BTree, encs[core.DoubleChar], 8, base)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn a disjoint namespace while scans run
		defer wg.Done()
		rng := rand.New(rand.NewSource(42))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := []byte(fmt.Sprintf("net.churn@%d", rng.Intn(100)))
			if i%3 == 0 {
				s.Delete(k)
			} else {
				// Offset churn vals above the stable val space so the scan
				// check can tell the populations apart.
				s.Put(k, uint64(i)+(1<<32))
			}
		}
	}()
	stable := map[uint64]bool{}
	for i := range base {
		stable[uint64(i)] = true
	}
	for iter := 0; iter < 30; iter++ {
		seen := map[uint64]int{}
		var last []byte
		s.Scan(nil, nil, func(k []byte, v uint64) bool {
			if last != nil && bytes.Compare(last, k) > 0 {
				t.Errorf("scan out of order")
				return false
			}
			last = append(last[:0], k...)
			seen[v]++
			return true
		})
		for v := range stable {
			if seen[v] != 1 {
				t.Fatalf("iter %d: stable val %d seen %d times", iter, v, seen[v])
			}
		}
	}
	close(stop)
	wg.Wait()
}
