package hope

// Store is the unified contract every index in this package serves: the
// single-goroutine Index, the lock-striped ShardedIndex, and the
// lifecycle-managed AdaptiveIndex all implement it, and everything built
// on top of the library — the network server in package server above all —
// accepts a Store rather than a concrete index type. Construct one with
// Open, which selects the implementation from functional options.
//
// Semantics shared by every implementation:
//
//   - Keys passed in are original (uncompressed) bytes; Put copies what it
//     must retain, so callers may reuse their buffers.
//   - Scan and ScanPrefix visit keys in ascending original-key order and
//     return how many keys they visited; fn may stop the traversal by
//     returning false. The key handed to fn is in the implementation's
//     stored form — the HOPE encoding for a compressed Index/ShardedIndex,
//     the original bytes for an AdaptiveIndex (whose record store keeps
//     them) — and is only valid for the duration of the callback.
//   - Bulk with nil vals assigns each key its position. On the bulk-only
//     SuRF backend it is the only way to load keys.
//   - Close makes the store final: it releases background machinery,
//     after which every mutation (Put, Delete, Bulk) is refused with
//     ErrClosed while Get, Scan, ScanPrefix, and Len keep serving the
//     final contents. Close is idempotent — a second call is a no-op
//     returning nil. Finality is what lets a snapshot-on-drain serialize
//     a store that can no longer change underneath it (see Persistent).
//
// Concurrency is the one axis the contract leaves to the implementation:
// Index is single-goroutine, ShardedIndex and AdaptiveIndex are safe for
// concurrent use. Servers should Open with WithShards or WithAdaptive.
type Store interface {
	// Put inserts or overwrites one key.
	Put(key []byte, val uint64) error
	// Get returns the value stored under key.
	Get(key []byte) (uint64, bool)
	// Delete removes key, reporting whether it was present.
	Delete(key []byte) (bool, error)
	// Bulk loads keys[i] -> vals[i] through the fast load path.
	Bulk(keys [][]byte, vals []uint64) error
	// Scan visits stored keys with lo <= k < hi in ascending order.
	Scan(lo, hi []byte, fn func(key []byte, val uint64) bool) int
	// ScanPrefix visits stored keys carrying prefix in ascending order.
	ScanPrefix(prefix []byte, fn func(key []byte, val uint64) bool) int
	// Len returns the number of live keys.
	Len() int
	// Close makes the store final: mutations return ErrClosed, reads and
	// scans keep serving. Idempotent.
	Close() error
}

// Quiescer is implemented by stores with background work that a server
// wants settled before shutdown completes: Quiesce blocks until every
// background task in flight has finished or aborted. AdaptiveIndex
// implements it (rebuild migrations); the static indexes have nothing to
// quiesce and do not.
type Quiescer interface {
	Quiesce()
}

// Every index implements Store; the server layer depends on it.
var (
	_ Store    = (*Index)(nil)
	_ Store    = (*ShardedIndex)(nil)
	_ Store    = (*AdaptiveIndex)(nil)
	_ Quiescer = (*AdaptiveIndex)(nil)
)

// Close implements Store. The plain Index has no background machinery to
// release; Close marks the index final, so subsequent mutations return
// ErrClosed while reads and scans keep serving. Idempotent; always
// returns nil.
func (x *Index) Close() error {
	x.closed = true
	return nil
}

// Close implements Store. ShardedIndex runs no background goroutines —
// shards are plain lock stripes — so Close only marks the index final:
// subsequent Put/Delete/Bulk return ErrClosed while reads and scans keep
// serving. Idempotent; always returns nil.
func (s *ShardedIndex) Close() error {
	s.closed.Store(true)
	return nil
}
